// Geometric design-rule checker for the combined CMOS + MEMS rule deck:
// the paper's point that "physical design verification, e.g. design-rule
// checks, can be performed with respect to the CMOS layers" because the
// MEMS masks live in the same design flow.
#pragma once

#include <string>
#include <vector>

#include "fab/layout.hpp"
#include "util/units.hpp"

namespace cbs::fab {

enum class RuleKind {
    min_width,      ///< every shape's min dimension >= value
    min_space,      ///< gap between disjoint same-layer shapes >= value
    min_enclosure,  ///< outer layer must enclose inner by >= value
};

struct DrcRule {
    RuleKind kind{};
    Layer layer{};        ///< checked layer (inner layer for enclosure)
    Layer other{};        ///< outer layer for enclosure rules
    Length value{};       ///< the rule distance
    std::string name;     ///< e.g. "OPEN.W.1"
};

struct DrcViolation {
    const DrcRule* rule = nullptr;
    Rect shape{};          ///< offending shape (first of the pair)
    double actual_um = 0.0;
    std::string describe() const;
};

class DrcEngine {
public:
    explicit DrcEngine(std::vector<DrcRule> rules);

    [[nodiscard]] const std::vector<DrcRule>& rules() const { return rules_; }

    /// Runs all rules against the cell; returns every violation found.
    [[nodiscard]] std::vector<DrcViolation> check(const Cell& cell) const;

    /// Convenience: true iff check() is empty.
    [[nodiscard]] bool clean(const Cell& cell) const { return check(cell).empty(); }

private:
    void check_width(const Cell& cell, const DrcRule& rule,
                     std::vector<DrcViolation>& out) const;
    void check_space(const Cell& cell, const DrcRule& rule,
                     std::vector<DrcViolation>& out) const;
    void check_enclosure(const Cell& cell, const DrcRule& rule,
                         std::vector<DrcViolation>& out) const;

    std::vector<DrcRule> rules_;
};

}  // namespace cbs::fab
