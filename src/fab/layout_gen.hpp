// Parameterized layout generator for the cantilever sensor cell: n-well
// plate, front-side etch windows (U-shaped release slot), back-side KOH
// membrane window, piezoresistor diffusions at the clamp (plus reference
// resistors on the substrate side), the metal-2 actuation coil and bond
// pads. The generated cell is DRC-clean against the default rule deck by
// construction — the property the paper highlights ("design verification
// can be performed with respect to the CMOS layers").
#pragma once

#include "fab/layout.hpp"
#include "mech/geometry.hpp"

namespace cbs::fab {

struct CantileverCellOptions {
    int coil_turns = 2;               ///< 0 for the static (unactuated) device
    bool reference_resistors = true;  ///< substrate-side bridge completion
    double slot_width_um = 12.0;      ///< front-side etch window width
    double coil_trace_um = 3.0;
    double coil_space_um = 2.0;
};

class CantileverCellGenerator {
public:
    CantileverCellGenerator(const mech::CantileverGeometry& geometry,
                            const CantileverCellOptions& options = {});

    /// Builds the full sensor cell.
    [[nodiscard]] Cell generate(const std::string& cell_name = "cantilever") const;

private:
    void add_well_and_beam(Cell& cell) const;
    void add_etch_windows(Cell& cell) const;
    void add_resistors(Cell& cell) const;
    void add_coil(Cell& cell) const;
    void add_pads(Cell& cell) const;

    double length_um_;
    double half_width_um_;
    CantileverCellOptions opt_;
};

}  // namespace cbs::fab
