#include "fab/layout_io.hpp"

#include <fstream>
#include <sstream>

#include "util/expect.hpp"

namespace cbs::fab {

void write_cell(std::ostream& os, const Cell& cell) {
    os << "CELL " << cell.name() << '\n';
    for (std::size_t i = 0; i < layer_count; ++i) {
        const auto layer = static_cast<Layer>(i);
        for (const auto& r : cell.shapes(layer)) {
            os << "RECT " << layer_name(layer) << ' ' << r.x1 << ' ' << r.y1 << ' ' << r.x2
               << ' ' << r.y2 << '\n';
        }
    }
    os << "ENDCELL\n";
}

std::string write_cell(const Cell& cell) {
    std::ostringstream os;
    write_cell(os, cell);
    return os.str();
}

Cell read_cell(std::istream& is) {
    std::string line;
    int line_no = 0;
    auto fail = [&](const std::string& why) {
        throw ContractViolation("layout line " + std::to_string(line_no) + ": " + why);
    };

    std::string cell_name;
    bool in_cell = false;
    bool ended = false;
    Cell cell("pending");

    while (std::getline(is, line)) {
        ++line_no;
        if (const auto hash = line.find('#'); hash != std::string::npos) line.erase(hash);
        std::istringstream ls(line);
        std::string keyword;
        if (!(ls >> keyword)) continue;

        if (keyword == "CELL") {
            if (in_cell) fail("nested CELL");
            if (!(ls >> cell_name)) fail("CELL needs a name");
            cell = Cell(cell_name);
            in_cell = true;
        } else if (keyword == "RECT") {
            if (!in_cell) fail("RECT outside CELL");
            std::string lname;
            Rect r;
            if (!(ls >> lname >> r.x1 >> r.y1 >> r.x2 >> r.y2)) {
                fail("expected: RECT LAYER x1 y1 x2 y2");
            }
            r.normalize();
            if (!r.valid()) fail("degenerate rectangle");
            cell.add(layer_from_name(lname), r);
        } else if (keyword == "ENDCELL") {
            if (!in_cell) fail("ENDCELL without CELL");
            ended = true;
            break;
        } else {
            fail("unknown keyword '" + keyword + "'");
        }
    }
    if (!in_cell) throw ContractViolation("layout: no CELL record found");
    if (!ended) throw ContractViolation("layout: missing ENDCELL");
    return cell;
}

Cell read_cell(const std::string& text) {
    std::istringstream is(text);
    return read_cell(is);
}

void save_cell(const Cell& cell, const std::string& path) {
    std::ofstream out(path);
    if (!out) throw ContractViolation("save_cell: cannot open " + path);
    write_cell(out, cell);
}

Cell load_cell(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw ContractViolation("load_cell: cannot open " + path);
    return read_cell(in);
}

}  // namespace cbs::fab
