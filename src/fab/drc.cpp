#include "fab/drc.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/expect.hpp"

namespace cbs::fab {

namespace {
std::int64_t to_nm(Length l) { return static_cast<std::int64_t>(std::llround(l.value() * 1e9)); }
}  // namespace

std::string DrcViolation::describe() const {
    std::ostringstream os;
    os << (rule != nullptr ? rule->name : "<unknown>") << ": actual " << actual_um
       << " um at (" << shape.x1 / 1000.0 << "," << shape.y1 / 1000.0 << ")";
    return os.str();
}

DrcEngine::DrcEngine(std::vector<DrcRule> rules) : rules_(std::move(rules)) {
    CBS_EXPECTS(!rules_.empty());
    for (const auto& r : rules_) CBS_EXPECTS(r.value.value() > 0.0);
}

std::vector<DrcViolation> DrcEngine::check(const Cell& cell) const {
    std::vector<DrcViolation> out;
    for (const auto& rule : rules_) {
        switch (rule.kind) {
            case RuleKind::min_width: check_width(cell, rule, out); break;
            case RuleKind::min_space: check_space(cell, rule, out); break;
            case RuleKind::min_enclosure: check_enclosure(cell, rule, out); break;
        }
    }
    return out;
}

void DrcEngine::check_width(const Cell& cell, const DrcRule& rule,
                            std::vector<DrcViolation>& out) const {
    const auto limit = to_nm(rule.value);
    for (const auto& r : cell.shapes(rule.layer)) {
        if (r.min_dimension() < limit) {
            out.push_back({&rule, r, static_cast<double>(r.min_dimension()) / 1000.0});
        }
    }
}

void DrcEngine::check_space(const Cell& cell, const DrcRule& rule,
                            std::vector<DrcViolation>& out) const {
    const double limit_um = rule.value.value() * 1e6;
    const auto& shapes = cell.shapes(rule.layer);
    for (std::size_t i = 0; i < shapes.size(); ++i) {
        for (std::size_t j = i + 1; j < shapes.size(); ++j) {
            // Touching/overlapping shapes merge; only disjoint pairs have
            // a spacing requirement.
            if (shapes[i].touches_or_intersects(shapes[j])) continue;
            const double d = shapes[i].distance_to(shapes[j]) / 1000.0;
            if (d < limit_um) out.push_back({&rule, shapes[i], d});
        }
    }
}

void DrcEngine::check_enclosure(const Cell& cell, const DrcRule& rule,
                                std::vector<DrcViolation>& out) const {
    const auto margin = to_nm(rule.value);
    for (const auto& inner : cell.shapes(rule.layer)) {
        bool enclosed = false;
        double best = -1e300;
        for (const auto& outer : cell.shapes(rule.other)) {
            if (outer.grown(-margin).contains(inner)) {
                enclosed = true;
                break;
            }
            if (outer.contains(inner)) {
                // Contained but with insufficient margin: report the worst
                // actual margin among the four sides.
                const double m =
                    static_cast<double>(std::min({inner.x1 - outer.x1, outer.x2 - inner.x2,
                                                  inner.y1 - outer.y1, outer.y2 - inner.y2})) /
                    1000.0;
                best = std::max(best, m);
            }
        }
        if (!enclosed) {
            out.push_back({&rule, inner, best > -1e299 ? best : 0.0});
        }
    }
}

}  // namespace cbs::fab
