#include "fab/layout_gen.hpp"

#include "util/expect.hpp"

namespace cbs::fab {

CantileverCellGenerator::CantileverCellGenerator(const mech::CantileverGeometry& geometry,
                                                 const CantileverCellOptions& options)
    : length_um_(geometry.length.value() * 1e6),
      half_width_um_(geometry.width.value() * 1e6 / 2.0),
      opt_(options) {
    geometry.validate();
    CBS_EXPECTS(options.coil_turns >= 0);
    CBS_EXPECTS(options.slot_width_um >= 10.0);  // OPEN.W rule
    if (options.coil_turns > 0) {
        // The coil must fit on the half width with trace/space rules.
        const double needed = options.coil_turns * (options.coil_trace_um +
                                                    options.coil_space_um) + 1.0;
        CBS_EXPECTS(half_width_um_ > needed);
    }
}

Cell CantileverCellGenerator::generate(const std::string& cell_name) const {
    Cell cell(cell_name);
    add_well_and_beam(cell);
    add_etch_windows(cell);
    add_resistors(cell);
    if (opt_.coil_turns > 0) add_coil(cell);
    add_pads(cell);
    return cell;
}

void CantileverCellGenerator::add_well_and_beam(Cell& cell) const {
    const double l = length_um_;
    const double hw = half_width_um_;
    // N-well defines the etch-stop silicon: beam plus the anchor shelf.
    cell.add_um(Layer::nwell, -12.0, -(hw + 4.0), l + 2.0, hw + 4.0);
    if (opt_.reference_resistors) {
        // Separate well for the substrate-side reference resistors.
        cell.add_um(Layer::nwell, -42.0, -14.0, -22.0, 14.0);
    }
    // Active area of the beam (for completeness of the front-end view).
    cell.add_um(Layer::active, 0.0, -hw, l, hw);
}

void CantileverCellGenerator::add_etch_windows(Cell& cell) const {
    const double l = length_um_;
    const double hw = half_width_um_;
    const double s = opt_.slot_width_um;
    // U-shaped release slot: the three rects touch, so they merge for DRC.
    cell.add_um(Layer::open, 0.0, hw, l + s, hw + s);          // top slot
    cell.add_um(Layer::open, 0.0, -(hw + s), l + s, -hw);      // bottom slot
    cell.add_um(Layer::open, l, -(hw + s), l + s, hw + s);     // tip slot
    // Back-side KOH cavity: generous margin for the (111) sidewall slope
    // through the full wafer (~0.7 * 525 um on each side is handled at
    // mask level by the wafer-scale tool; the cell carries the nominal
    // window).
    cell.add_um(Layer::membrane, -60.0, -(hw + s + 40.0), l + s + 40.0, hw + s + 40.0);
}

void CantileverCellGenerator::add_resistors(Cell& cell) const {
    // Two active gauges at the clamped edge, longitudinal current.
    cell.add_um(Layer::pdiff, 2.0, 3.0, 14.0, 7.0);
    cell.add_um(Layer::pdiff, 2.0, -7.0, 14.0, -3.0);
    if (opt_.reference_resistors) {
        cell.add_um(Layer::pdiff, -40.0, 3.0, -28.0, 7.0);
        cell.add_um(Layer::pdiff, -40.0, -7.0, -28.0, -3.0);
    }
    // Metal-1 bridge wiring stubs.
    cell.add_um(Layer::metal1, 2.0, 7.0, 4.0, 18.0);
    cell.add_um(Layer::metal1, 2.0, -18.0, 4.0, -7.0);
}

void CantileverCellGenerator::add_coil(Cell& cell) const {
    const double l = length_um_;
    const double hw = half_width_um_;
    const double w = opt_.coil_trace_um;
    const double sp = opt_.coil_space_um;
    for (int turn = 0; turn < opt_.coil_turns; ++turn) {
        const double inset = 1.0 + turn * (w + sp);
        const double y_out = hw - inset;        // outer edge of this turn
        const double y_in = y_out - w;
        const double x_tip = l - 4.0 - inset;   // tip segment outer x
        // Top run, bottom run and tip connector.
        cell.add_um(Layer::metal2, -6.0, y_in, x_tip, y_out);
        cell.add_um(Layer::metal2, -6.0, -y_out, x_tip, -y_in);
        cell.add_um(Layer::metal2, x_tip - w, -y_out, x_tip, y_out);
    }
}

void CantileverCellGenerator::add_pads(Cell& cell) const {
    // Two bond pads on the anchor side (bias and output of the cell).
    cell.add_um(Layer::metal1, -90.0, 30.0, -60.0, 60.0);
    cell.add_um(Layer::pad, -85.0, 35.0, -65.0, 55.0);
    cell.add_um(Layer::metal1, -90.0, -60.0, -60.0, -30.0);
    cell.add_um(Layer::pad, -85.0, -55.0, -65.0, -35.0);
}

}  // namespace cbs::fab
