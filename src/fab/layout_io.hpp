// Minimal text interchange format for layout cells (a GDS stand-in that
// stays human-diffable):
//
//     CELL cantilever
//     RECT NWELL -12000 -24000 152000 24000      # nm coordinates
//     ...
//     ENDCELL
//
// Round-trips exactly (integer nm grid), so layouts can be checked into a
// repo, diffed in review and re-verified by the DRC.
#pragma once

#include <iosfwd>
#include <string>

#include "fab/layout.hpp"

namespace cbs::fab {

/// Serializes a cell (sorted by layer, then insertion order).
std::string write_cell(const Cell& cell);
void write_cell(std::ostream& os, const Cell& cell);

/// Parses one cell; throws cbs::ContractViolation with a line number on
/// malformed input.
Cell read_cell(const std::string& text);
Cell read_cell(std::istream& is);

/// Convenience file helpers.
void save_cell(const Cell& cell, const std::string& path);
Cell load_cell(const std::string& path);

}  // namespace cbs::fab
