#include "fab/etch.hpp"

#include <cmath>

#include "util/constants.hpp"
#include "util/expect.hpp"

namespace cbs::fab {

namespace {
// KOH (100) etch activation energy ~0.595 eV (Seidel model).
constexpr double activation_energy_ev = 0.595;
constexpr double ev_to_joule = 1.602176634e-19;
// Calibration: 1.4 um/min at 90 C, 30 wt%.
constexpr double calib_rate = 1.4e-6 / 60.0;
constexpr double calib_temp = 363.15;
}  // namespace

KohEtchSimulator::KohEtchSimulator(const KohEtchConfig& config) : cfg_(config) {
    CBS_EXPECTS(config.bath_temperature.value() > 273.15);
    CBS_EXPECTS(config.koh_weight_fraction > 0.1 && config.koh_weight_fraction < 0.6);
    CBS_EXPECTS(config.stack.wafer_thickness.value() >
                config.stack.nwell_junction_depth.value());
    const double kT = constants::k_B.value() * cfg_.bath_temperature.value();
    const double kT_cal = constants::k_B.value() * calib_temp;
    const double ea = activation_energy_ev * ev_to_joule;
    // Concentration dependence (Seidel: rate ~ [H2O]^4 [KOH]^(1/4)) is
    // folded into a mild penalty away from the 30 wt% calibration point.
    const double conc_penalty =
        1.0 - 2.0 * std::abs(cfg_.koh_weight_fraction - 0.30);
    nominal_rate_m_per_s_ =
        calib_rate * std::exp(-ea / kT) / std::exp(-ea / kT_cal) * conc_penalty;
}

Velocity KohEtchSimulator::nominal_rate() const { return Velocity{nominal_rate_m_per_s_}; }

Time KohEtchSimulator::nominal_stop_time() const {
    const double depth_to_etch =
        cfg_.stack.wafer_thickness.value() - cfg_.stack.nwell_junction_depth.value();
    return Time{depth_to_etch / nominal_rate_m_per_s_};
}

std::vector<std::pair<double, double>> KohEtchSimulator::front_profile(Time step) const {
    CBS_EXPECTS(step.value() > 0.0);
    std::vector<std::pair<double, double>> out;
    const double t_stop = nominal_stop_time().value();
    const double target =
        cfg_.stack.wafer_thickness.value() - cfg_.stack.nwell_junction_depth.value();
    for (double t = 0.0;; t += step.value()) {
        const double depth = std::min(nominal_rate_m_per_s_ * t, target);
        out.emplace_back(t, depth);
        if (t >= t_stop) break;
    }
    return out;
}

EtchResult KohEtchSimulator::run_electrochemical(Rng& rng) const {
    EtchResult r;
    // The pn-junction passivates the surface when reached: thickness is the
    // junction depth with only the diffusion-driven spread.
    const double t_final = rng.normal(cfg_.stack.nwell_junction_depth.value(),
                                      cfg_.junction_depth_sigma.value());
    r.final_thickness = Length{std::max(t_final, 0.0)};
    const double rate = rng.lognormal_rel(nominal_rate_m_per_s_, cfg_.rate_rel_sigma);
    const double wafer =
        rng.normal(cfg_.stack.wafer_thickness.value(), cfg_.wafer_thickness_sigma.value());
    r.duration = Time{(wafer - r.final_thickness.value()) / rate};
    r.stopped_on_junction = true;
    return r;
}

EtchResult KohEtchSimulator::run_timed(Time target_duration, Rng& rng) const {
    CBS_EXPECTS(target_duration.value() > 0.0);
    EtchResult r;
    const double rate = rng.lognormal_rel(nominal_rate_m_per_s_, cfg_.rate_rel_sigma);
    const double wafer =
        rng.normal(cfg_.stack.wafer_thickness.value(), cfg_.wafer_thickness_sigma.value());
    const double remaining = wafer - rate * target_duration.value();
    r.duration = target_duration;
    r.stopped_on_junction = false;
    if (remaining <= 0.0) {
        r.final_thickness = Length{0.0};
        r.broke_through = true;
    } else {
        r.final_thickness = Length{remaining};
    }
    return r;
}

ReleaseResult plan_release_etch(const StackInfo& stack, Length beam_thickness,
                                const ReleaseEtchConfig& config) {
    CBS_EXPECTS(beam_thickness.value() > 0.0);
    CBS_EXPECTS(config.dielectric_rate.value() > 0.0);
    CBS_EXPECTS(config.silicon_rate.value() > 0.0);
    ReleaseResult r;
    const double margin = 1.0 + config.overetch_fraction;
    r.dielectric_step =
        Time{stack.dielectric_total().value() / config.dielectric_rate.value() * margin};
    r.silicon_step = Time{beam_thickness.value() / config.silicon_rate.value() * margin};
    return r;
}

}  // namespace cbs::fab
