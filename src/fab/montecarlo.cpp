#include "fab/montecarlo.hpp"

#include <array>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/tracer.hpp"
#include "surrogate/cache.hpp"
#include "surrogate/sampler.hpp"
#include "surrogate/tier.hpp"
#include "util/expect.hpp"
#include "util/stats.hpp"

namespace cbs::fab {

ProcessMonteCarlo::ProcessMonteCarlo(const mech::CantileverGeometry& nominal,
                                     const KohEtchConfig& etch, const ProcessVariation& variation,
                                     EtchMode mode)
    : nominal_(nominal), etcher_(etch), variation_(variation), mode_(mode) {
    nominal_.validate();
    CBS_EXPECTS(variation.youngs_rel_sigma >= 0.0);
    // Consistency: the design thickness should be the etch-stop depth.
    CBS_EXPECTS(std::abs(nominal.thickness.value() -
                         etch.stack.nwell_junction_depth.value()) <
                0.5 * nominal.thickness.value());
}

DeviceSample ProcessMonteCarlo::sample(Rng& rng) const {
    DeviceSample s;
    s.etch = mode_ == EtchMode::electrochemical_stop
                 ? etcher_.run_electrochemical(rng)
                 : etcher_.run_timed(etcher_.nominal_stop_time(), rng);

    s.geometry = nominal_;
    s.geometry.thickness = s.etch.final_thickness;
    const double bias = rng.normal(0.0, variation_.litho_bias_sigma.value());
    s.geometry.length = Length{nominal_.length.value() + bias};
    s.geometry.width = Length{nominal_.width.value() + bias};
    s.geometry.material.youngs_modulus =
        Stress{rng.lognormal_rel(nominal_.material.youngs_modulus.value(),
                                 variation_.youngs_rel_sigma)};

    // A device is functional if it released with a plausible beam left:
    // thick enough to survive handling, thin enough to have released.
    const double t = s.geometry.thickness.value();
    s.functional = t > 0.5e-6 && t < 3.0 * nominal_.thickness.value() &&
                   s.geometry.length.value() >= 10.0 * t;
    if (s.functional) {
        s.resonance = mech::EulerBernoulliBeam(s.geometry).resonance_frequency();
    }
    return s;
}

MonteCarloStats ProcessMonteCarlo::run(std::size_t n, Rng& rng, double f0_tolerance) const {
    return run_seeded(n, rng.raw_word(), f0_tolerance, &exec::ThreadPool::shared());
}

surrogate::ProcessBox ProcessMonteCarlo::surrogate_box() const {
    surrogate::ProcessBox box;
    box.junction_mean_m = etcher_.config().stack.nwell_junction_depth.value();
    box.junction_sigma_m = etcher_.config().junction_depth_sigma.value();
    box.litho_sigma_m = variation_.litho_bias_sigma.value();
    box.youngs_nominal_pa = nominal_.material.youngs_modulus.value();
    box.youngs_rel_sigma = variation_.youngs_rel_sigma;
    box.length_m = nominal_.length.value();
    box.width_m = nominal_.width.value();
    box.density_kg_m3 = nominal_.material.density.value();
    return box;
}

namespace {

/// Mergeable per-chunk accumulator: Welford stats (stable and exact to
/// merge, unlike sum-of-squares) plus the in-band counter. The surrogate
/// path extends it with eval-mix counters; they stay zero on the full path.
struct TrialAccumulator {
    stats::RunningStats f0;
    stats::RunningStats thickness;
    std::size_t in_band = 0;
    std::size_t surrogate_evals = 0;
    std::size_t fallback_evals = 0;
    std::size_t spot_checks = 0;
    double max_spot_rel_err = 0.0;
};

TrialAccumulator merge_accumulators(TrialAccumulator a, const TrialAccumulator& b) {
    a.f0.merge(b.f0);
    a.thickness.merge(b.thickness);
    a.in_band += b.in_band;
    a.surrogate_evals += b.surrogate_evals;
    a.fallback_evals += b.fallback_evals;
    a.spot_checks += b.spot_checks;
    a.max_spot_rel_err = std::max(a.max_spot_rel_err, b.max_spot_rel_err);
    return a;
}

/// The mc.trials / mc.yield progress series (trials completed and
/// yield-so-far). Pushed from the chunk-order merge fold — the caller's
/// thread, ascending chunk order — so the stream itself is deterministic
/// for any thread count.
struct ProgressSeries {
    obs::TelemetrySeries* trials;
    obs::TelemetrySeries* yield;
    ProgressSeries() {
        auto& telemetry = obs::Telemetry::instance();
        trials = telemetry.series("mc.trials", /*tau0=*/1.0, 64);
        yield = telemetry.series("mc.yield", /*tau0=*/1.0, 64);
    }
    void push(const TrialAccumulator& acc) const {
        const auto done = acc.thickness.count();
        trials->push(static_cast<double>(done));
        yield->push(done > 0
                        ? static_cast<double>(acc.in_band) / static_cast<double>(done)
                        : 0.0);
    }
};

}  // namespace

MonteCarloStats ProcessMonteCarlo::run_seeded(std::size_t n, std::uint64_t root_seed,
                                              double f0_tolerance,
                                              exec::ThreadPool* pool) const {
    CBS_EXPECTS(n >= 2);
    CBS_EXPECTS(f0_tolerance > 0.0);
    const obs::ScopedTimer span("mc.run", "fab");
    if (surrogate::tier() != surrogate::Tier::off &&
        mode_ == EtchMode::electrochemical_stop) {
        // Fit once per parameter box (process-wide cache), evaluate every
        // trial through the polynomial. Timed etches keep the legacy path:
        // their thickness physics (rate x time, breakthrough) is not in the
        // surrogate's parameterization.
        const auto model = surrogate::SurrogateCache::instance().resonance(surrogate_box(), pool);
        if (model->accepted()) {
            return run_surrogate(*model, n, root_seed, f0_tolerance, pool);
        }
        // Fit missed its error budget: never use a surrogate that failed
        // validation — run the full simulation instead.
        obs::MetricsRegistry::instance().counter("mc.surrogate.fallback_full")->add(n);
    }
    return run_full(n, root_seed, f0_tolerance, pool);
}

MonteCarloStats ProcessMonteCarlo::run_full(std::size_t n, std::uint64_t root_seed,
                                            double f0_tolerance, exec::ThreadPool* pool) const {
    const double f0_nom = nominal_resonance().value();
    const ProgressSeries progress;

    auto eval_chunk = [&](std::size_t begin, std::size_t end) {
        TrialAccumulator acc;
        for (std::size_t i = begin; i < end; ++i) {
            Rng trial_rng = Rng::for_stream(root_seed, i);
            const auto s = sample(trial_rng);
            acc.thickness.add(s.etch.final_thickness.value());
            if (!s.functional) continue;
            acc.f0.add(s.resonance.value());
            if (std::abs(s.resonance.value() - f0_nom) <= f0_tolerance * f0_nom) ++acc.in_band;
        }
        return acc;
    };
    auto merge = [&](TrialAccumulator a, const TrialAccumulator& b) {
        a = merge_accumulators(std::move(a), b);
        progress.push(a);
        return a;
    };
    const auto acc =
        exec::chunked_reduce<TrialAccumulator>(pool, n, kTrialChunk, eval_chunk, merge);
    if (n <= kTrialChunk) progress.push(acc);  // single chunk: merge never ran
    obs::Telemetry::instance().maybe_sample("fab.mc");

    auto& registry = obs::MetricsRegistry::instance();
    registry.counter("mc.trials")->add(n);
    registry.counter("mc.functional")->add(acc.f0.count());
    registry.counter("mc.in_band")->add(acc.in_band);

    MonteCarloStats out;
    out.samples = n;
    out.f0_mean_hz = acc.f0.mean();
    out.f0_sigma_hz = acc.f0.stddev();
    out.thickness_mean_m = acc.thickness.mean();
    out.thickness_sigma_m = acc.thickness.stddev();
    out.yield = static_cast<double>(acc.in_band) / static_cast<double>(n);
    registry.gauge("mc.yield")->set(out.yield);
    return out;
}

MonteCarloStats ProcessMonteCarlo::run_surrogate(const surrogate::ResonanceSurrogate& model,
                                                 std::size_t n, std::uint64_t root_seed,
                                                 double f0_tolerance,
                                                 exec::ThreadPool* pool) const {
    const double f0_nom = nominal_resonance().value();
    const double t_nom = nominal_.thickness.value();
    const bool spot_check = surrogate::tier() == surrogate::Tier::check;
    const std::size_t stride = surrogate::check_stride();
    const double budget = surrogate::error_budget();
    const auto& zig = surrogate::detail::ziggurat_tables();
    const ProgressSeries progress;

    auto eval_chunk = [&](std::size_t begin, std::size_t end) {
        TrialAccumulator acc;
        const std::size_t m = end - begin;
        std::array<double, kTrialChunk> z1{}, z2{}, z3{}, f0{}, tc{};
        std::array<bool, kTrialChunk> functional{}, in_box{};
        for (std::size_t j = 0; j < m; ++j) {
            auto rng = surrogate::CounterRng::for_trial(root_seed, begin + j);
            z1[j] = surrogate::ziggurat_normal(rng, zig);
            z2[j] = surrogate::ziggurat_normal(rng, zig);
            z3[j] = surrogate::ziggurat_normal(rng, zig);
            // Same clamp and functional predicate as sample().
            tc[j] = std::max(model.thickness_of(z1[j]), 0.0);
            const double len = model.length_of(z2[j]);
            functional[j] = tc[j] > 0.5e-6 && tc[j] < 3.0 * t_nom && len >= 10.0 * tc[j];
            in_box[j] = model.box().contains(z1[j], z2[j], z3[j]);
        }
        // One vectorized sweep over the chunk; out-of-box lanes are
        // recomputed with the full model below (a ~1e-9 fraction of trials
        // at z_max = 6).
        model.eval_many(z1.data(), z2.data(), z3.data(), f0.data(), m);
        for (std::size_t j = 0; j < m; ++j) {
            acc.thickness.add(tc[j]);
            if (!functional[j]) continue;
            double f;
            if (in_box[j]) {
                f = f0[j];
                ++acc.surrogate_evals;
                if (spot_check && (begin + j) % stride == 0) {
                    const double full = model.full_eval(z1[j], z2[j], z3[j]);
                    const double rel =
                        std::abs(f - full) / std::max(std::abs(full), 1e-300);
                    ++acc.spot_checks;
                    acc.max_spot_rel_err = std::max(acc.max_spot_rel_err, rel);
                    if (rel > budget) {
                        throw surrogate::SurrogateError(
                            "surrogate spot check failed: trial " +
                            std::to_string(begin + j) + " rel err " + std::to_string(rel) +
                            " exceeds budget " + std::to_string(budget));
                    }
                }
            } else {
                f = model.full_eval(z1[j], z2[j], z3[j]);
                ++acc.fallback_evals;
            }
            acc.f0.add(f);
            if (std::abs(f - f0_nom) <= f0_tolerance * f0_nom) ++acc.in_band;
        }
        return acc;
    };
    // Hand-rolled chunked reduce: identical chunk boundaries and the same
    // ascending caller-side merge as exec::chunked_reduce (results stay
    // bit-equal to it for any thread count), but pool tasks each own a
    // *strided group* of chunks instead of one chunk apiece — at ~4 us of
    // surrogate work per 64-trial chunk, per-task dispatch overhead would
    // otherwise eat a noticeable slice of the speedup on pooled runs.
    const std::size_t chunks = (n + kTrialChunk - 1) / kTrialChunk;
    std::vector<TrialAccumulator> partial(chunks);
    auto eval = [&](std::size_t c) {
        const std::size_t begin = c * kTrialChunk;
        partial[c] = eval_chunk(begin, std::min(begin + kTrialChunk, n));
    };
    if (pool != nullptr && chunks > 1) {
        const std::size_t groups = std::min(chunks, 2 * pool->thread_count());
        pool->parallel_for(groups, [&](std::size_t g) {
            for (std::size_t c = g; c < chunks; c += groups) eval(c);
        });
    } else {
        for (std::size_t c = 0; c < chunks; ++c) eval(c);
    }
    TrialAccumulator acc = std::move(partial.front());
    for (std::size_t c = 1; c < chunks; ++c) {
        acc = merge_accumulators(std::move(acc), partial[c]);
        progress.push(acc);
    }
    if (chunks == 1) progress.push(acc);
    obs::Telemetry::instance().maybe_sample("fab.mc");

    auto& registry = obs::MetricsRegistry::instance();
    registry.counter("mc.trials")->add(n);
    registry.counter("mc.functional")->add(acc.f0.count());
    registry.counter("mc.in_band")->add(acc.in_band);
    registry.counter("mc.surrogate.eval")->add(acc.surrogate_evals);
    registry.counter("mc.surrogate.fallback_full")->add(acc.fallback_evals);
    registry.counter("mc.surrogate.spot_checks")->add(acc.spot_checks);
    if (acc.spot_checks > 0) {
        registry.gauge("mc.surrogate.max_rel_err")->set(acc.max_spot_rel_err);
    }

    MonteCarloStats out;
    out.samples = n;
    out.f0_mean_hz = acc.f0.mean();
    out.f0_sigma_hz = acc.f0.stddev();
    out.thickness_mean_m = acc.thickness.mean();
    out.thickness_sigma_m = acc.thickness.stddev();
    out.yield = static_cast<double>(acc.in_band) / static_cast<double>(n);
    registry.gauge("mc.yield")->set(out.yield);
    return out;
}

Frequency ProcessMonteCarlo::nominal_resonance() const {
    return mech::EulerBernoulliBeam(nominal_).resonance_frequency();
}

}  // namespace cbs::fab
