#include "fab/montecarlo.hpp"

#include <cmath>

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "util/expect.hpp"
#include "util/stats.hpp"

namespace cbs::fab {

ProcessMonteCarlo::ProcessMonteCarlo(const mech::CantileverGeometry& nominal,
                                     const KohEtchConfig& etch, const ProcessVariation& variation,
                                     EtchMode mode)
    : nominal_(nominal), etcher_(etch), variation_(variation), mode_(mode) {
    nominal_.validate();
    CBS_EXPECTS(variation.youngs_rel_sigma >= 0.0);
    // Consistency: the design thickness should be the etch-stop depth.
    CBS_EXPECTS(std::abs(nominal.thickness.value() -
                         etch.stack.nwell_junction_depth.value()) <
                0.5 * nominal.thickness.value());
}

DeviceSample ProcessMonteCarlo::sample(Rng& rng) const {
    DeviceSample s;
    s.etch = mode_ == EtchMode::electrochemical_stop
                 ? etcher_.run_electrochemical(rng)
                 : etcher_.run_timed(etcher_.nominal_stop_time(), rng);

    s.geometry = nominal_;
    s.geometry.thickness = s.etch.final_thickness;
    const double bias = rng.normal(0.0, variation_.litho_bias_sigma.value());
    s.geometry.length = Length{nominal_.length.value() + bias};
    s.geometry.width = Length{nominal_.width.value() + bias};
    s.geometry.material.youngs_modulus =
        Stress{rng.lognormal_rel(nominal_.material.youngs_modulus.value(),
                                 variation_.youngs_rel_sigma)};

    // A device is functional if it released with a plausible beam left:
    // thick enough to survive handling, thin enough to have released.
    const double t = s.geometry.thickness.value();
    s.functional = t > 0.5e-6 && t < 3.0 * nominal_.thickness.value() &&
                   s.geometry.length.value() >= 10.0 * t;
    if (s.functional) {
        s.resonance = mech::EulerBernoulliBeam(s.geometry).resonance_frequency();
    }
    return s;
}

MonteCarloStats ProcessMonteCarlo::run(std::size_t n, Rng& rng, double f0_tolerance) const {
    return run_seeded(n, rng.raw_word(), f0_tolerance, &exec::ThreadPool::shared());
}

namespace {

/// Mergeable per-chunk accumulator: Welford stats (stable and exact to
/// merge, unlike sum-of-squares) plus the in-band counter.
struct TrialAccumulator {
    stats::RunningStats f0;
    stats::RunningStats thickness;
    std::size_t in_band = 0;
};

}  // namespace

MonteCarloStats ProcessMonteCarlo::run_seeded(std::size_t n, std::uint64_t root_seed,
                                              double f0_tolerance,
                                              exec::ThreadPool* pool) const {
    CBS_EXPECTS(n >= 2);
    CBS_EXPECTS(f0_tolerance > 0.0);
    const obs::ScopedTimer span("mc.run", "fab");
    const double f0_nom = nominal_resonance().value();

    auto eval_chunk = [&](std::size_t begin, std::size_t end) {
        TrialAccumulator acc;
        for (std::size_t i = begin; i < end; ++i) {
            Rng trial_rng = Rng::for_stream(root_seed, i);
            const auto s = sample(trial_rng);
            acc.thickness.add(s.etch.final_thickness.value());
            if (!s.functional) continue;
            acc.f0.add(s.resonance.value());
            if (std::abs(s.resonance.value() - f0_nom) <= f0_tolerance * f0_nom) ++acc.in_band;
        }
        return acc;
    };
    auto merge = [](TrialAccumulator a, const TrialAccumulator& b) {
        a.f0.merge(b.f0);
        a.thickness.merge(b.thickness);
        a.in_band += b.in_band;
        return a;
    };
    const auto acc =
        exec::chunked_reduce<TrialAccumulator>(pool, n, kTrialChunk, eval_chunk, merge);

    auto& registry = obs::MetricsRegistry::instance();
    registry.counter("mc.trials")->add(n);
    registry.counter("mc.functional")->add(acc.f0.count());
    registry.counter("mc.in_band")->add(acc.in_band);

    MonteCarloStats out;
    out.samples = n;
    out.f0_mean_hz = acc.f0.mean();
    out.f0_sigma_hz = acc.f0.stddev();
    out.thickness_mean_m = acc.thickness.mean();
    out.thickness_sigma_m = acc.thickness.stddev();
    out.yield = static_cast<double>(acc.in_band) / static_cast<double>(n);
    registry.gauge("mc.yield")->set(out.yield);
    return out;
}

Frequency ProcessMonteCarlo::nominal_resonance() const {
    return mech::EulerBernoulliBeam(nominal_).resonance_frequency();
}

}  // namespace cbs::fab
