// The 0.8 um double-poly double-metal CMOS layer stack plus the three
// additional post-CMOS micromachining mask layers (paper section 2: "the
// design of the three additional mask layers is completely integrated in
// the physical design flow of the CMOS technology").
#pragma once

#include <cstdint>
#include <string>

#include "util/units.hpp"

namespace cbs::fab {

enum class Layer : std::uint8_t {
    // Standard 0.8 um 2P2M CMOS front end.
    nwell,
    active,
    poly1,
    poly2,
    pdiff,    ///< p+ implant (piezoresistors)
    ndiff,
    contact,
    metal1,
    via1,
    metal2,
    pad,
    // Post-CMOS micromachining masks.
    open,       ///< front-side dielectric/Si dry-etch window (mask 1 & 2)
    membrane,   ///< back-side KOH cavity window (mask 3)
    count_,     // sentinel
};

inline constexpr std::size_t layer_count = static_cast<std::size_t>(Layer::count_);

/// Human-readable layer name ("NWELL", "OPEN", ...).
std::string layer_name(Layer layer);
/// Inverse of layer_name; throws on unknown names.
Layer layer_from_name(const std::string& name);

/// True for the three post-CMOS MEMS mask layers.
bool is_mems_layer(Layer layer);

/// Vertical stack information used by the etch simulator.
struct StackInfo {
    Length wafer_thickness{525e-6};
    Length nwell_junction_depth{5.2e-6};  ///< etch-stop plane -> cantilever t
    Length field_oxide{0.6e-6};
    Length interlevel_oxide{1.6e-6};      ///< ILD + IMD combined
    Length passivation{1.0e-6};

    /// Total dielectric the front-side oxide etch must clear.
    [[nodiscard]] Length dielectric_total() const {
        return field_oxide + interlevel_oxide + passivation;
    }
};

}  // namespace cbs::fab
