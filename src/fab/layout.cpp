#include "fab/layout.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"

namespace cbs::fab {

namespace {
constexpr double nm_per_um = 1000.0;
}

Rect Rect::from_um(double x1, double y1, double x2, double y2) {
    Rect r{static_cast<std::int64_t>(std::llround(x1 * nm_per_um)),
           static_cast<std::int64_t>(std::llround(y1 * nm_per_um)),
           static_cast<std::int64_t>(std::llround(x2 * nm_per_um)),
           static_cast<std::int64_t>(std::llround(y2 * nm_per_um))};
    r.normalize();
    return r;
}

void Rect::normalize() {
    if (x1 > x2) std::swap(x1, x2);
    if (y1 > y2) std::swap(y1, y2);
}

std::int64_t Rect::min_dimension() const { return std::min(width(), height()); }

double Rect::area_um2() const {
    return static_cast<double>(width()) * static_cast<double>(height()) /
           (nm_per_um * nm_per_um);
}

bool Rect::intersects(const Rect& o) const {
    return x1 < o.x2 && o.x1 < x2 && y1 < o.y2 && o.y1 < y2;
}

bool Rect::touches_or_intersects(const Rect& o) const {
    return x1 <= o.x2 && o.x1 <= x2 && y1 <= o.y2 && o.y1 <= y2;
}

bool Rect::contains(const Rect& o) const {
    return x1 <= o.x1 && y1 <= o.y1 && x2 >= o.x2 && y2 >= o.y2;
}

Rect Rect::grown(std::int64_t margin) const {
    Rect r{x1 - margin, y1 - margin, x2 + margin, y2 + margin};
    return r;
}

double Rect::distance_to(const Rect& o) const {
    if (touches_or_intersects(o)) return 0.0;
    const std::int64_t dx = std::max<std::int64_t>({o.x1 - x2, x1 - o.x2, 0});
    const std::int64_t dy = std::max<std::int64_t>({o.y1 - y2, y1 - o.y2, 0});
    return std::hypot(static_cast<double>(dx), static_cast<double>(dy));
}

Cell::Cell(std::string name) : name_(std::move(name)) { CBS_EXPECTS(!name_.empty()); }

void Cell::add(Layer layer, const Rect& r) {
    CBS_EXPECTS(r.valid());
    shapes_[static_cast<std::size_t>(layer)].push_back(r);
}

void Cell::add_um(Layer layer, double x1, double y1, double x2, double y2) {
    add(layer, Rect::from_um(x1, y1, x2, y2));
}

const std::vector<Rect>& Cell::shapes(Layer layer) const {
    return shapes_[static_cast<std::size_t>(layer)];
}

std::size_t Cell::shape_count() const {
    std::size_t n = 0;
    for (const auto& v : shapes_) n += v.size();
    return n;
}

Rect Cell::bounding_box() const {
    bool any = false;
    Rect bb{};
    for (const auto& v : shapes_) {
        for (const auto& r : v) {
            if (!any) {
                bb = r;
                any = true;
            } else {
                bb.x1 = std::min(bb.x1, r.x1);
                bb.y1 = std::min(bb.y1, r.y1);
                bb.x2 = std::max(bb.x2, r.x2);
                bb.y2 = std::max(bb.y2, r.y2);
            }
        }
    }
    CBS_EXPECTS(any);
    return bb;
}

double Cell::layer_area_um2(Layer layer) const {
    // Union area by coordinate compression (shape counts are small).
    const auto& rects = shapes(layer);
    if (rects.empty()) return 0.0;
    std::vector<std::int64_t> xs, ys;
    for (const auto& r : rects) {
        xs.push_back(r.x1);
        xs.push_back(r.x2);
        ys.push_back(r.y1);
        ys.push_back(r.y2);
    }
    std::sort(xs.begin(), xs.end());
    xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
    std::sort(ys.begin(), ys.end());
    ys.erase(std::unique(ys.begin(), ys.end()), ys.end());
    double area_nm2 = 0.0;
    for (std::size_t i = 0; i + 1 < xs.size(); ++i) {
        for (std::size_t j = 0; j + 1 < ys.size(); ++j) {
            const Rect probe{xs[i], ys[j], xs[i + 1], ys[j + 1]};
            for (const auto& r : rects) {
                if (r.contains(probe)) {
                    area_nm2 += static_cast<double>(probe.width()) *
                                static_cast<double>(probe.height());
                    break;
                }
            }
        }
    }
    return area_nm2 / (nm_per_um * nm_per_um);
}

}  // namespace cbs::fab
