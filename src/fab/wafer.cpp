#include "fab/wafer.hpp"

#include <cmath>

#include "util/expect.hpp"

namespace cbs::fab {

WaferMap::WaferMap(const WaferConfig& wafer, const ProcessMonteCarlo& process)
    : cfg_(wafer), process_(process) {
    CBS_EXPECTS(wafer.diameter.value() > 0.0);
    CBS_EXPECTS(wafer.die_width.value() > 0.0 && wafer.die_height.value() > 0.0);
    CBS_EXPECTS(wafer.edge_exclusion.value() < wafer.diameter.value() / 2.0);
}

std::vector<std::pair<double, double>> WaferMap::die_positions() const {
    std::vector<std::pair<double, double>> out;
    const double r_use = cfg_.diameter.value() / 2.0 - cfg_.edge_exclusion.value();
    const double dw = cfg_.die_width.value();
    const double dh = cfg_.die_height.value();
    const auto nx = static_cast<int>(std::floor(2.0 * r_use / dw));
    const auto ny = static_cast<int>(std::floor(2.0 * r_use / dh));
    for (int i = -nx / 2; i <= nx / 2; ++i) {
        for (int j = -ny / 2; j <= ny / 2; ++j) {
            const double cx = i * dw;
            const double cy = j * dh;
            // Whole die must fit inside the usable circle.
            const double corner = std::hypot(std::abs(cx) + dw / 2.0, std::abs(cy) + dh / 2.0);
            if (corner <= r_use) out.emplace_back(cx * 1e3, cy * 1e3);
        }
    }
    return out;
}

std::size_t WaferMap::die_count() const { return die_positions().size(); }

std::vector<DieResult> WaferMap::fabricate(Rng& rng) const {
    std::vector<DieResult> out;
    const double r_wafer = cfg_.diameter.value() / 2.0;
    for (const auto& [x_mm, y_mm] : die_positions()) {
        DieResult die;
        die.x_mm = x_mm;
        die.y_mm = y_mm;
        die.device = process_.sample(rng);
        // Radial systematic component on the etch-stop thickness.
        const double r = std::hypot(x_mm, y_mm) * 1e-3;
        const double bow = cfg_.junction_bow.value() * (r / r_wafer) * (r / r_wafer);
        auto g = die.device.geometry;
        g.thickness = Length{g.thickness.value() + bow};
        die.device.geometry = g;
        if (die.device.functional) {
            die.device.resonance = mech::EulerBernoulliBeam(g).resonance_frequency();
        }
        out.push_back(die);
    }
    return out;
}

WaferYield WaferMap::summarize(const std::vector<DieResult>& dies, double f0_tolerance) const {
    CBS_EXPECTS(!dies.empty());
    CBS_EXPECTS(f0_tolerance > 0.0);
    WaferYield y;
    y.dies = dies.size();
    const double f0_nom = process_.nominal_resonance().value();
    for (const auto& d : dies) {
        if (!d.device.functional) continue;
        if (std::abs(d.device.resonance.value() - f0_nom) <= f0_tolerance * f0_nom) ++y.good;
    }
    y.yield = static_cast<double>(y.good) / static_cast<double>(y.dies);
    y.cost_per_good_die_usd =
        y.good > 0 ? cfg_.wafer_cost_usd / static_cast<double>(y.good) : 0.0;
    return y;
}

}  // namespace cbs::fab
