#include "fab/layer.hpp"

#include <array>

#include "util/expect.hpp"

namespace cbs::fab {

namespace {
constexpr std::array<const char*, layer_count> names{
    "NWELL", "ACTIVE", "POLY1", "POLY2", "PDIFF", "NDIFF", "CONTACT",
    "METAL1", "VIA1",  "METAL2", "PAD",  "OPEN",  "MEMBRANE",
};
}  // namespace

std::string layer_name(Layer layer) {
    const auto i = static_cast<std::size_t>(layer);
    CBS_EXPECTS(i < layer_count);
    return names[i];
}

Layer layer_from_name(const std::string& name) {
    for (std::size_t i = 0; i < layer_count; ++i) {
        if (name == names[i]) return static_cast<Layer>(i);
    }
    throw ContractViolation("unknown layer name: " + name);
}

bool is_mems_layer(Layer layer) {
    return layer == Layer::open || layer == Layer::membrane;
}

}  // namespace cbs::fab
