#include "fab/ruledeck.hpp"

#include <sstream>

#include "util/expect.hpp"

namespace cbs::fab {

std::vector<DrcRule> parse_rule_deck(const std::string& text) {
    std::vector<DrcRule> rules;
    std::istringstream in(text);
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        // Strip comments.
        if (const auto hash = line.find('#'); hash != std::string::npos) {
            line.erase(hash);
        }
        std::istringstream ls(line);
        std::string kind;
        if (!(ls >> kind)) continue;  // blank line

        auto fail = [&](const std::string& why) {
            throw ContractViolation("rule deck line " + std::to_string(line_no) + ": " + why);
        };

        DrcRule rule;
        std::string layer_a;
        double value_um = 0.0;
        if (kind == "width" || kind == "space") {
            if (!(ls >> layer_a >> value_um)) fail("expected: " + kind + " LAYER value_um");
            rule.kind = kind == "width" ? RuleKind::min_width : RuleKind::min_space;
            rule.layer = layer_from_name(layer_a);
            rule.name = layer_name(rule.layer) + (kind == "width" ? ".W" : ".S");
        } else if (kind == "enclose") {
            std::string layer_b;
            if (!(ls >> layer_a >> layer_b >> value_um)) {
                fail("expected: enclose INNER OUTER value_um");
            }
            rule.kind = RuleKind::min_enclosure;
            rule.layer = layer_from_name(layer_a);
            rule.other = layer_from_name(layer_b);
            rule.name = layer_name(rule.other) + ".ENC." + layer_name(rule.layer);
        } else {
            fail("unknown rule kind '" + kind + "'");
        }
        if (value_um <= 0.0) fail("rule value must be positive");
        rule.value = Length{value_um * 1e-6};
        std::string trailing;
        if (ls >> trailing) fail("trailing token '" + trailing + "'");
        rules.push_back(rule);
    }
    CBS_EXPECTS(!rules.empty());
    return rules;
}

const std::string& default_rule_deck_text() {
    static const std::string deck = R"(# 0.8 um double-poly double-metal CMOS + post-CMOS MEMS rule deck.
# Front-end rules (subset relevant to the sensor cell).
width   NWELL   4.0
space   NWELL   8.0
width   PDIFF   2.0
space   PDIFF   2.4
width   POLY1   0.8
space   POLY1   1.2
width   METAL1  1.2
space   METAL1  1.4
width   METAL2  1.6
space   METAL2  1.8
# Micromachining masks (paper section 2: three additional mask layers).
width   OPEN      10.0   # front-side etch window must clear the RIE aspect ratio
space   OPEN      20.0   # window-to-window spacing protects circuits
width   MEMBRANE  50.0   # back-side KOH opening incl. (111) sidewall slope
# Cross-layer interactions.
enclose PDIFF  NWELL     2.0   # resistors live in the etch-stop well
enclose METAL2 NWELL     1.0   # coil stays on the released plate
)";
    return deck;
}

std::vector<DrcRule> default_rule_deck() { return parse_rule_deck(default_rule_deck_text()); }

}  // namespace cbs::fab
