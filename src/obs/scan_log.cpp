#include "obs/scan_log.hpp"

namespace cbs::obs {

ScanLog& ScanLog::instance() {
    static ScanLog log;
    return log;
}

void ScanLog::append(ScanRecord record) {
    const std::lock_guard<std::mutex> lock(mu_);
    records_.push_back(std::move(record));
}

std::vector<ScanRecord> ScanLog::snapshot() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return records_;
}

std::size_t ScanLog::size() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return records_.size();
}

void ScanLog::clear() {
    const std::lock_guard<std::mutex> lock(mu_);
    records_.clear();
}

}  // namespace cbs::obs
