// Signal-level probes: attachable taps on live sample streams.
//
// The paper's claims live in analog waveforms — chopper ripple, bridge
// offset, oscillator lock, limiter saturation — and Kirstein et al. debug
// their chip by routing internal nodes through the on-chip analog mux to a
// probe pad. obs::Probe is the software equivalent: a named tap a signal
// path writes its samples through, which (only while recording) maintains
//   * streaming Welford statistics (count/mean/stddev/min/max, via
//     stats::RunningStats) plus a non-finite sample count,
//   * a decimated waveform (bounded memory: the stride doubles and the
//     stored points compact whenever the buffer fills),
//   * a fixed-size flight-recorder ring of the most recent samples
//     (dumped to CSV on trigger — see obs/flight_recorder.hpp),
//   * any attached watchdogs (see obs/watchdog.hpp).
//
// Cost contract (same as the rest of cbs::obs):
//   * not armed (the default): tap() is one relaxed atomic load and a
//     predictable branch — the probe can stay wired into a hot loop,
//   * armed but CBS_OBS=off ("attached-idle"): one more relaxed load,
//   * armed and recording: the probe takes its own mutex per tap/batch.
//     Batch paths use tap_block() so the lock and the virtual-free inner
//     loop are paid once per batch, mirroring circ::Block::process_block.
//
// Arming: probes named by the CBS_OBS_PROBES spec (comma-separated exact
// names or 'prefix*' globs; '*' = everything) arm at registration; code can
// force-arm with set_armed(true) (Chain::attach_probes does). Observation
// never perturbs the observed signal — a probe only reads samples — which
// the golden bit-identity suites assert.
//
// Threading: a probe is single-writer (one signal path taps it). Distinct
// probes are fully independent — per-element sweeps use per-element probe
// scopes. Concurrent tapping of the SAME probe is memory-safe (the mutex)
// but interleaves the streams, so don't share one probe across threads.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/watchdog.hpp"
#include "util/stats.hpp"

namespace cbs::obs {

/// One decimated waveform point / one flight-ring entry.
struct ProbeSample {
    std::uint64_t index = 0;  ///< running tap count at this sample
    double value = 0.0;
};

/// Snapshot of a probe's streaming statistics.
struct ProbeStats {
    std::uint64_t n = 0;          ///< finite samples folded into the stats
    std::uint64_t non_finite = 0; ///< NaN/Inf samples seen (kept out of stats)
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
};

class Probe {
public:
    /// Records one sample. Near-zero cost unless armed and recording.
    void tap(double v) noexcept {
        if (!armed_.load(std::memory_order_relaxed)) return;
        if (!enabled()) return;
        record(std::span<const double>(&v, 1));
    }

    /// Records a whole batch under one lock; equivalent to tap(v) per
    /// element in order.
    void tap_block(std::span<const double> values) noexcept {
        if (!armed_.load(std::memory_order_relaxed)) return;
        if (!enabled()) return;
        if (values.empty()) return;
        record(values);
    }

    [[nodiscard]] const std::string& name() const { return name_; }

    [[nodiscard]] bool armed() const noexcept { return armed_.load(std::memory_order_relaxed); }
    /// Explicit attachment (overrides the CBS_OBS_PROBES spec decision).
    void set_armed(bool armed) noexcept { armed_.store(armed, std::memory_order_relaxed); }

    [[nodiscard]] ProbeStats stats() const;
    /// Total samples tapped (finite + non-finite).
    [[nodiscard]] std::uint64_t sample_count() const;

    /// Decimated waveform, oldest first. `waveform_stride()` tells how many
    /// raw samples each stored point stands for.
    [[nodiscard]] std::vector<ProbeSample> waveform() const;
    [[nodiscard]] std::uint64_t waveform_stride() const;

    /// Flight ring contents, oldest first (at most ring_capacity() entries).
    [[nodiscard]] std::vector<ProbeSample> ring() const;
    [[nodiscard]] std::size_t ring_capacity() const { return ring_capacity_; }
    /// Resizes (and clears) the ring; capacity must be > 0.
    void set_ring_capacity(std::size_t capacity);

    /// Attaches a detector; it sees every recorded sample from now on.
    /// Idempotent per kind: a second watchdog with the same kind() replaces
    /// nothing and is discarded (so re-constructing a system that installs
    /// default watchdogs on a shared scope doesn't stack duplicates).
    void add_watchdog(std::unique_ptr<Watchdog> dog);
    [[nodiscard]] bool has_watchdog(std::string_view kind) const;

    /// Writes the ring to "<CBS_OBS_OUT>/flight_<probe>.csv" via the
    /// FlightRecorder and returns the path ("" if the ring is empty or the
    /// per-probe trigger budget is spent and `force` is false).
    std::string dump_flight(std::string_view reason, bool force = true);

    /// Clears stats, waveform, ring and watchdog state; re-arms the
    /// automatic dump trigger. Does not change armed().
    void reset();

private:
    friend class ProbeRegistry;
    friend class Watchdog;

    explicit Probe(std::string name);

    void record(std::span<const double> values) noexcept;
    /// Watchdog fault hook (called with mu_ held, from record()).
    void on_fault(std::string_view kind, std::uint64_t sample_index);
    std::string dump_locked(std::string_view reason, bool force);

    std::string name_;
    std::atomic<bool> armed_{false};

    mutable std::mutex mu_;
    stats::RunningStats stats_;          // finite samples only
    std::uint64_t taps_ = 0;             // all samples
    std::uint64_t non_finite_ = 0;
    bool non_finite_raised_ = false;

    // Decimated waveform: keep every stride-th sample; on overflow drop
    // every other stored point and double the stride.
    static constexpr std::size_t kWaveformCapacity = 2048;
    std::uint64_t waveform_stride_ = 1;
    std::vector<ProbeSample> waveform_;

    // Flight ring.
    std::size_t ring_capacity_;
    std::vector<ProbeSample> ring_;
    std::size_t ring_head_ = 0;  // next write slot once the ring is full
    bool dump_pending_ = false;
    std::string dump_reason_;
    bool dump_spent_ = false;    // one automatic dump per probe per run

    std::vector<std::unique_ptr<Watchdog>> watchdogs_;
};

/// Process-global name -> probe registry; pointers are stable for the
/// process lifetime (same contract as MetricsRegistry).
class ProbeRegistry {
public:
    static ProbeRegistry& instance();

    /// Returns the probe named `name`, creating (and arming it per the
    /// active spec) on first use.
    Probe* probe(std::string_view name);
    /// Lookup without creation; nullptr when absent.
    [[nodiscard]] Probe* find(std::string_view name) const;

    /// All registered probes, sorted by name.
    [[nodiscard]] std::vector<Probe*> probes() const;

    /// Replaces the arming spec (normally CBS_OBS_PROBES) and re-evaluates
    /// every registered probe against it. Force-armed probes that do not
    /// match the new spec are disarmed — the spec is authoritative.
    void set_spec(std::string spec);
    [[nodiscard]] std::string spec() const;

    /// True when `name` matches the comma-separated pattern list `spec`
    /// (exact token, 'prefix*' glob, or a bare '*').
    [[nodiscard]] static bool spec_matches(std::string_view spec, std::string_view name);

    /// Resets every probe's recorded state (stats/waveform/ring/watchdogs).
    void reset_all();

private:
    ProbeRegistry();

    mutable std::mutex mu_;
    std::string spec_;
    std::vector<std::pair<std::string, std::unique_ptr<Probe>>> probes_;
};

/// Default flight-ring capacity: CBS_OBS_RING (integer >= 1), default 256.
[[nodiscard]] std::size_t default_ring_capacity();

}  // namespace cbs::obs
