// Structured observability events: watchdog fires, non-finite samples and
// execution faults land here as typed records rather than log lines, so a
// failed run can be triaged programmatically (per-probe counts, severity
// totals, the exact sample index that went bad).
//
// The log is process-global and thread-safe: appends take a mutex, which is
// acceptable because events are *exceptional* — the steady-state cost of the
// subsystem is the probes' tap path, never this log. Workers on the exec
// ThreadPool append concurrently; severity counters are mirrored into the
// MetricsRegistry (`obs.events.<severity>`) so every run report shows a
// non-zero summary line when something fired.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace cbs::obs {

enum class Severity : int { info = 0, warning = 1, fault = 2 };

[[nodiscard]] std::string_view severity_name(Severity s) noexcept;

/// One structured occurrence. `probe` is the probe (or subsystem) that
/// raised it; `sample_index` is the probe's running sample count at the
/// offending sample (0 when not sample-related).
struct Event {
    Severity severity = Severity::info;
    std::string kind;          ///< e.g. "non_finite", "range", "lock_loss"
    std::string probe;         ///< raising probe / subsystem id
    std::uint64_t sample_index = 0;
    double value = 0.0;        ///< offending sample (when applicable)
    std::string message;
};

/// Process-global append-only event log.
class EventLog {
public:
    static EventLog& instance();

    /// Thread-safe append; also bumps the `obs.events.<severity>` counter.
    /// Events are recorded regardless of the CBS_OBS level: a probe only
    /// raises while it is recording, so the level gate has already been
    /// paid upstream, and a watchdog fire must never be droppable by a
    /// reporting switch.
    void append(Event e);

    /// Appends a batch in the given order under one lock (deterministic
    /// per-element merges: collect locally, merge in index order).
    void append_all(std::vector<Event> events);

    [[nodiscard]] std::vector<Event> events() const;
    [[nodiscard]] std::size_t size() const;

    /// Number of events with severity >= min.
    [[nodiscard]] std::size_t count(Severity min = Severity::info) const;
    /// Number of events with exactly severity `s` (report severity totals).
    [[nodiscard]] std::size_t count_exact(Severity s) const;
    /// Number of events whose probe id starts with `prefix` (severity >= min).
    [[nodiscard]] std::size_t count_for_prefix(std::string_view prefix,
                                               Severity min = Severity::info) const;

    /// One line per event: "[fault] range resonant.loop @1234 v=0.2 msg".
    [[nodiscard]] std::string render(std::size_t max_lines = 20) const;

    void clear();

private:
    EventLog() = default;

    mutable std::mutex mu_;
    std::vector<Event> events_;
};

}  // namespace cbs::obs
