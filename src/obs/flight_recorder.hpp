// Flight recorder: turns a probe's ring of recent samples into an on-disk
// artifact the moment something goes wrong. A failed golden test, a
// watchdog fire or a NaN in a Monte-Carlo trial then ships the last N
// samples of the offending signal (CSV, one row per sample) instead of a
// bare assertion message.
//
// Dumps land in out_dir() (CBS_OBS_OUT, default "."); file names are
// "flight_<probe>.csv" with '.' and '/' sanitized to '_'. Automatic
// triggers (non-finite sample, fault-severity watchdog fire) spend a
// one-dump-per-probe budget so a persistently bad signal cannot fill the
// disk; explicit dump calls are unbudgeted.
#pragma once

#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/probe.hpp"

namespace cbs::obs {

class FlightRecorder {
public:
    static FlightRecorder& instance();

    /// Writes `samples` (oldest first) as CSV for probe `probe_name`;
    /// returns the file path ("" on I/O failure — triggers fire inside
    /// signal paths, so a bad CBS_OBS_OUT must not take the run down).
    std::string write(std::string_view probe_name, std::span<const ProbeSample> samples,
                      std::string_view reason);

    /// Dumps every registered probe with a non-empty ring (explicit
    /// trigger; ignores the per-probe budget). Returns the written paths.
    std::vector<std::string> dump_all(std::string_view reason);

    /// Paths written so far in this process (test/CI introspection).
    [[nodiscard]] std::vector<std::string> dumped_files() const;

    void clear_history();

private:
    FlightRecorder() = default;

    mutable std::mutex mu_;
    std::vector<std::string> files_;
};

}  // namespace cbs::obs
