// End-of-run reporting: collects the metrics registry into a RunReport
// (per-process tick table + counters + gauges) rendered with util/table,
// and a BenchSession RAII object every bench/example main installs so that
// `CBS_OBS=summary <bench>` prints the report and `CBS_OBS=trace` also
// writes chrome://tracing JSON + CSV into $CBS_OBS_OUT.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cbs::obs {

/// Snapshot of everything the registry learned during the run.
struct RunReport {
    /// One row per tick loop ("process"): histograms named `proc.<name>`
    /// (per-tick wall time in ns) plus ScopedTimer sections (`span.<name>`).
    struct ProcessRow {
        std::string name;
        std::uint64_t ticks = 0;
        double total_ms = 0.0;
        double mean_us = 0.0;
        double p50_us = 0.0;
        double p99_us = 0.0;
        double max_us = 0.0;
    };
    struct CounterRow {
        std::string name;
        std::uint64_t value = 0;
    };
    struct GaugeRow {
        std::string name;
        double value = 0.0;
    };

    std::vector<ProcessRow> processes;  ///< `proc.*` histograms
    std::vector<ProcessRow> spans;      ///< `span.*` histograms
    std::vector<CounterRow> counters;
    std::vector<GaugeRow> gauges;

    /// Builds a report from the global MetricsRegistry.
    [[nodiscard]] static RunReport collect();

    /// Console tables (empty sections omitted); empty string if nothing
    /// was recorded.
    [[nodiscard]] std::string render(const std::string& title = {}) const;

    [[nodiscard]] bool empty() const {
        return processes.empty() && spans.empty() && counters.empty() && gauges.empty();
    }
};

/// Install as the first statement of a bench/example main. On destruction:
///   CBS_OBS=summary  -> prints the run report to stdout
///   CBS_OBS=trace    -> also writes <out>/<name>_trace.json (+ .csv)
/// With CBS_OBS unset/off it does nothing.
class BenchSession {
public:
    explicit BenchSession(std::string name);
    ~BenchSession();

    BenchSession(const BenchSession&) = delete;
    BenchSession& operator=(const BenchSession&) = delete;

    [[nodiscard]] const std::string& name() const { return name_; }

private:
    std::string name_;
};

}  // namespace cbs::obs
