// End-of-run reporting: collects the metrics registry, the probe registry
// and the event log into a RunReport (per-process tick table + counters +
// gauges + probe statistics + event summary) rendered with util/table, and
// a BenchSession RAII object every bench/example main installs so that
// `CBS_OBS=summary <bench>` prints the report and `CBS_OBS=trace` also
// writes chrome://tracing JSON + CSV + a machine-readable report JSON into
// $CBS_OBS_OUT (the JSON is what tools/cbs-obs-diff compares across runs).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/scan_log.hpp"

namespace cbs::obs {

/// Snapshot of everything the registry learned during the run.
struct RunReport {
    /// One row per tick loop ("process"): histograms named `proc.<name>`
    /// (per-tick wall time in ns) plus ScopedTimer sections (`span.<name>`).
    /// A registered histogram that never observed a sample keeps ticks == 0
    /// and renders as an "n=0" row with the statistics columns suppressed
    /// (never NaN).
    struct ProcessRow {
        std::string name;
        std::uint64_t ticks = 0;
        double total_ms = 0.0;
        double mean_us = 0.0;
        double p50_us = 0.0;
        double p99_us = 0.0;
        double max_us = 0.0;
    };
    struct CounterRow {
        std::string name;
        std::uint64_t value = 0;
    };
    struct GaugeRow {
        std::string name;
        double value = 0.0;
    };
    /// One row per armed-or-tapped signal probe (see obs/probe.hpp).
    struct ProbeRow {
        std::string name;
        std::uint64_t n = 0;           ///< finite samples
        std::uint64_t non_finite = 0;  ///< NaN/Inf samples
        double mean = 0.0;
        double stddev = 0.0;
        double min = 0.0;
        double max = 0.0;
    };
    /// Event totals by severity plus the first rendered event lines.
    struct EventSummary {
        std::uint64_t info = 0;
        std::uint64_t warning = 0;
        std::uint64_t fault = 0;
        std::vector<std::string> lines;
        [[nodiscard]] std::uint64_t total() const { return info + warning + fault; }
    };

    std::vector<ProcessRow> processes;  ///< `proc.*` histograms
    std::vector<ProcessRow> spans;      ///< `span.*` histograms
    std::vector<CounterRow> counters;
    std::vector<GaugeRow> gauges;
    std::vector<ProbeRow> probes;
    /// One row per completed array scan (obs::ScanLog, filled by
    /// array::ScanController) — site counts, reading moments and the
    /// removed common-mode reference level.
    std::vector<ScanRecord> scans;
    EventSummary events;

    /// Builds a report from the global MetricsRegistry + ProbeRegistry +
    /// EventLog.
    [[nodiscard]] static RunReport collect();

    /// Console tables (empty sections omitted); empty string if nothing
    /// was recorded. Zero-sample rows print "n=0" and dashes — a report
    /// never contains "nan".
    [[nodiscard]] std::string render(const std::string& title = {}) const;

    /// Machine-readable export (the format tools/cbs-obs-diff consumes).
    /// Non-finite values serialize as null.
    [[nodiscard]] std::string to_json() const;
    /// Writes to_json() to `path`; returns false on I/O failure.
    bool write_json(const std::string& path) const;

    [[nodiscard]] bool empty() const {
        return processes.empty() && spans.empty() && counters.empty() && gauges.empty() &&
               probes.empty() && scans.empty() && events.total() == 0;
    }
};

/// Install as the first statement of a bench/example main. On destruction:
///   CBS_OBS=summary  -> prints the run report to stdout
///   CBS_OBS=trace    -> also writes <out>/<name>_trace.json (+ .csv) and
///                       <out>/<name>_report.json
/// With CBS_OBS unset/off it does nothing.
class BenchSession {
public:
    explicit BenchSession(std::string name);
    ~BenchSession();

    BenchSession(const BenchSession&) = delete;
    BenchSession& operator=(const BenchSession&) = delete;

    [[nodiscard]] const std::string& name() const { return name_; }

private:
    std::string name_;
};

}  // namespace cbs::obs
