#include "obs/flight_recorder.hpp"

#include <filesystem>
#include <fstream>

#include "obs/metrics.hpp"

namespace cbs::obs {

FlightRecorder& FlightRecorder::instance() {
    static FlightRecorder recorder;
    return recorder;
}

namespace {

std::string sanitize(std::string_view name) {
    std::string out(name);
    for (char& c : out) {
        if (c == '.' || c == '/' || c == '\\' || c == ' ') c = '_';
    }
    return out;
}

}  // namespace

std::string FlightRecorder::write(std::string_view probe_name,
                                  std::span<const ProbeSample> samples,
                                  std::string_view reason) {
    if (samples.empty()) return {};
    std::error_code ec;
    std::filesystem::create_directories(out_dir(), ec);
    const std::string path = out_dir() + "/flight_" + sanitize(probe_name) + ".csv";
    std::ofstream out(path);
    if (!out.good()) return {};
    out << "probe,reason,sample_index,value\n";
    for (const auto& s : samples) {
        out << probe_name << ',' << reason << ',' << s.index << ',';
        // CSV must round-trip NaN/Inf — the offending sample is the point.
        const auto old_precision = out.precision(17);
        out << s.value << '\n';
        out.precision(old_precision);
    }
    out.close();
    MetricsRegistry::instance().counter("obs.flight_dumps")->add();
    const std::lock_guard lock(mu_);
    files_.push_back(path);
    return path;
}

std::vector<std::string> FlightRecorder::dump_all(std::string_view reason) {
    std::vector<std::string> out;
    for (Probe* p : ProbeRegistry::instance().probes()) {
        auto path = p->dump_flight(reason, /*force=*/true);
        if (!path.empty()) out.push_back(std::move(path));
    }
    return out;
}

std::vector<std::string> FlightRecorder::dumped_files() const {
    const std::lock_guard lock(mu_);
    return files_;
}

void FlightRecorder::clear_history() {
    const std::lock_guard lock(mu_);
    files_.clear();
}

}  // namespace cbs::obs
