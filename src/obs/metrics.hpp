// Observability metrics: process-global registry of named counters, gauges
// and fixed-bucket histograms feeding the end-of-run report every bench
// prints (see obs/report.hpp).
//
// Design constraints, in order:
//   1. Zero cost when disabled — every record path is one relaxed atomic
//      load and a predictable branch (`CBS_OBS` unset or `off`).
//   2. Hot-path friendly when enabled — recording is lock-free (relaxed
//      atomic increments); the registry mutex is only taken at
//      registration/lookup time, so call sites cache the returned pointer.
//   3. Header-light — no <iostream>, no formatting here; rendering lives in
//      obs/report.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace cbs::obs {

/// Global observability level, initialized once from the environment:
///   CBS_OBS=off      (default) nothing is recorded
///   CBS_OBS=summary  metrics are recorded; benches print a run report
///   CBS_OBS=trace    summary + span tracer writes chrome://tracing JSON/CSV
enum class Level : int { off = 0, summary = 1, trace = 2 };

namespace detail {
extern std::atomic<int> g_level;
}

/// Parses "off"/"summary"/"trace" (anything else -> off).
Level parse_level(std::string_view text);

[[nodiscard]] inline Level level() noexcept {
    return static_cast<Level>(detail::g_level.load(std::memory_order_relaxed));
}
[[nodiscard]] inline bool enabled() noexcept { return level() != Level::off; }
[[nodiscard]] inline bool tracing() noexcept { return level() == Level::trace; }

/// Programmatic override (tests, overhead benchmarks). The environment is
/// read once before main; this replaces that choice for the whole process.
void set_level(Level l) noexcept;

/// Output directory for trace/report/flight artifacts: CBS_OBS_OUT,
/// default ".".
[[nodiscard]] const std::string& out_dir();
/// Programmatic override of out_dir() (tests, tools). Not thread-safe
/// against concurrent artifact writes; call it during setup.
void set_out_dir(std::string dir);

/// Monotonically increasing event count. All mutation is relaxed-atomic.
class Counter {
public:
    void add(std::uint64_t n = 1) noexcept {
        if (enabled()) v_.fetch_add(n, std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t value() const noexcept {
        return v_.load(std::memory_order_relaxed);
    }
    void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

private:
    std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
public:
    void set(double v) noexcept {
        if (enabled()) bits_.store(to_bits(v), std::memory_order_relaxed);
    }
    /// Keeps the running maximum instead of the last write (high-water
    /// marks, e.g. exec queue depth); lock-free CAS, reset() re-arms it.
    void record_max(double v) noexcept;
    [[nodiscard]] double value() const noexcept {
        return from_bits(bits_.load(std::memory_order_relaxed));
    }
    void reset() noexcept { bits_.store(to_bits(0.0), std::memory_order_relaxed); }

private:
    static std::uint64_t to_bits(double v) noexcept;
    static double from_bits(std::uint64_t b) noexcept;
    std::atomic<std::uint64_t> bits_{0};
};

/// Fixed-bucket histogram. Buckets are half-open intervals: bucket i counts
/// observations v with bound[i-1] <= v < bound[i] (bucket 0 has no lower
/// bound); one extra overflow bucket counts v >= bound.back(). A sample
/// exactly on a bucket edge therefore always belongs to the bucket ABOVE
/// the edge — including the top edge, which lands in overflow — the
/// standard half-open rule, consistent for every edge. Also tracks
/// count/sum/min/max so the report can show totals and bucket-interpolated
/// percentiles.
class Histogram {
public:
    /// `upper_bounds` must be non-empty and strictly increasing.
    explicit Histogram(std::span<const double> upper_bounds);

    void observe(double v) noexcept;

    [[nodiscard]] std::uint64_t count() const noexcept;
    [[nodiscard]] double sum() const noexcept;
    [[nodiscard]] double min() const noexcept;  ///< 0 when empty
    [[nodiscard]] double max() const noexcept;  ///< 0 when empty
    [[nodiscard]] double mean() const noexcept;

    /// Linear interpolation inside the owning bucket, p in [0,100].
    [[nodiscard]] double percentile(double p) const;

    [[nodiscard]] std::span<const double> upper_bounds() const { return bounds_; }
    /// Per-bucket counts; size() == upper_bounds().size() + 1 (overflow last).
    [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;

    void reset() noexcept;

    /// Log-spaced bounds for wall-time observations in nanoseconds:
    /// 50 ns .. ~1.6 s, a factor 2 apart (26 buckets).
    static const std::vector<double>& timing_bounds_ns();

private:
    std::vector<double> bounds_;
    std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_bits_;      // double bits, CAS-accumulated
    std::atomic<std::uint64_t> min_bits_;
    std::atomic<std::uint64_t> max_bits_;
};

/// Process-global name -> metric registry. Returned pointers are stable for
/// the process lifetime; look a metric up once and cache the pointer.
class MetricsRegistry {
public:
    static MetricsRegistry& instance();

    Counter* counter(std::string_view name);
    Gauge* gauge(std::string_view name);
    /// Default bounds: Histogram::timing_bounds_ns(). Requesting an existing
    /// histogram ignores `upper_bounds` and returns the registered one.
    Histogram* histogram(std::string_view name);
    Histogram* histogram(std::string_view name, std::span<const double> upper_bounds);

    struct Snapshot {
        struct CounterEntry { std::string name; std::uint64_t value; };
        struct GaugeEntry { std::string name; double value; };
        struct HistogramEntry { std::string name; const Histogram* histogram; };
        std::vector<CounterEntry> counters;    // sorted by name, zeros omitted
        std::vector<GaugeEntry> gauges;        // sorted by name
        // Sorted by name. Zero-sample histograms are included: the report
        // renders them as "n=0" rows (percentiles suppressed) instead of
        // silently dropping a registered-but-never-hit instrument.
        std::vector<HistogramEntry> histograms;
    };
    /// Consistent-enough view for reporting (values are relaxed reads).
    [[nodiscard]] Snapshot snapshot() const;

    /// Zeroes every registered metric (tests, repeated bench sections).
    void reset_all();

private:
    MetricsRegistry() = default;

    mutable std::mutex mu_;
    // node-based maps keep metric addresses stable across registrations
    std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_;
    std::vector<std::pair<std::string, std::unique_ptr<Gauge>>> gauges_;
    std::vector<std::pair<std::string, std::unique_ptr<Histogram>>> histograms_;
};

}  // namespace cbs::obs
