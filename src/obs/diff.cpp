#include "obs/diff.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/json.hpp"
#include "util/table.hpp"

namespace cbs::obs {

namespace {

// Which direction of change is harmful for a metric.
enum class Direction { up, down, none };

struct Metric {
    std::string name;
    double value = 0.0;
    Direction dir = Direction::none;
    bool zero_tolerance = false;  // any harmful change regresses (non_finite)
};

void collect_benchmark_metrics(const json::Value& doc, std::vector<Metric>& out) {
    const json::Value& benches = doc.at("benchmarks");
    for (std::size_t i = 0; i < benches.size(); ++i) {
        const json::Value& b = benches.at(i);
        const std::string& name = b.at("name").as_string();
        if (const json::Value* v = b.find("real_time"); v != nullptr && v->is_number()) {
            out.push_back({name + " real_time", v->as_number(), Direction::up, false});
        }
        if (const json::Value* v = b.find("items_per_second");
            v != nullptr && v->is_number()) {
            out.push_back({name + " items/s", v->as_number(), Direction::down, false});
        }
        if (const json::Value* v = b.find("bytes_per_second");
            v != nullptr && v->is_number()) {
            out.push_back({name + " bytes/s", v->as_number(), Direction::down, false});
        }
    }
}

void collect_process_metrics(const json::Value& rows, std::string_view prefix,
                             std::vector<Metric>& out) {
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const json::Value& r = rows.at(i);
        const std::string name = std::string(prefix) + "." + r.at("name").as_string();
        if (r.at("ticks").as_number() == 0.0) continue;  // n=0 rows carry no stats
        if (const json::Value* v = r.find("mean_us"); v != nullptr && v->is_number()) {
            out.push_back({name + " mean_us", v->as_number(), Direction::up, false});
        }
        if (const json::Value* v = r.find("p99_us"); v != nullptr && v->is_number()) {
            out.push_back({name + " p99_us", v->as_number(), Direction::up, false});
        }
    }
}

void collect_report_metrics(const json::Value& doc, std::vector<Metric>& out) {
    if (const json::Value* v = doc.find("processes")) collect_process_metrics(*v, "proc", out);
    if (const json::Value* v = doc.find("spans")) collect_process_metrics(*v, "span", out);
    if (const json::Value* v = doc.find("counters")) {
        for (const auto& [name, value] : v->items()) {
            if (value.is_number()) {
                out.push_back({"counter " + name, value.as_number(), Direction::none, false});
            }
        }
    }
    if (const json::Value* v = doc.find("gauges")) {
        for (const auto& [name, value] : v->items()) {
            if (value.is_number()) {
                out.push_back({"gauge " + name, value.as_number(), Direction::none, false});
            }
        }
    }
    if (const json::Value* v = doc.find("probes")) {
        for (std::size_t i = 0; i < v->size(); ++i) {
            const json::Value& p = v->at(i);
            const std::string name = "probe " + p.at("name").as_string();
            if (const json::Value* m = p.find("mean"); m != nullptr && m->is_number()) {
                out.push_back({name + " mean", m->as_number(), Direction::none, false});
            }
            if (const json::Value* m = p.find("stddev"); m != nullptr && m->is_number()) {
                out.push_back({name + " stddev", m->as_number(), Direction::none, false});
            }
            // A signal going non-finite is a correctness signal, not a
            // statistic: any increase over the baseline is a regression.
            if (const json::Value* m = p.find("non_finite"); m != nullptr && m->is_number()) {
                out.push_back({name + " non_finite", m->as_number(), Direction::up, true});
            }
        }
    }
}

std::vector<Metric> collect_metrics(const json::Value& doc) {
    if (!doc.is_object()) throw json::ParseError("diff input is not a JSON object");
    std::vector<Metric> out;
    if (doc.find("benchmarks") != nullptr) {
        collect_benchmark_metrics(doc, out);
    } else {
        collect_report_metrics(doc, out);
    }
    return out;
}

/// parse_file with the path stitched into every diagnostic, plus a
/// structure check: a file that parses but is not a RunReport/benchmark
/// export (e.g. `{}` or a stray log) must fail loudly, not diff as an
/// empty report.
json::Value parse_diff_input(const std::string& path) {
    json::Value doc;
    try {
        doc = json::Value::parse_file(path);
    } catch (const json::ParseError& e) {
        const std::string what = e.what();
        // parse_file's unreadable-file message already names the path.
        if (what.find(path) != std::string::npos) throw;
        throw json::ParseError("'" + path + "': " + what);
    }
    if (!doc.is_object() ||
        (doc.find("benchmarks") == nullptr && doc.find("processes") == nullptr &&
         doc.find("spans") == nullptr && doc.find("counters") == nullptr &&
         doc.find("gauges") == nullptr && doc.find("probes") == nullptr)) {
        throw json::ParseError("'" + path +
                               "': not a RunReport or google-benchmark JSON export");
    }
    return doc;
}

/// Environment facts from a google-benchmark export's "context" block that
/// decide whether two runs are comparable at all.
struct RunContext {
    std::string build_type;  // context.library_build_type ("debug"/"release")
    double num_cpus = -1.0;
    bool has_build_type = false;
    bool has_num_cpus = false;
};

RunContext collect_context(const json::Value& doc) {
    RunContext c;
    const json::Value* ctx = doc.is_object() ? doc.find("context") : nullptr;
    if (ctx == nullptr || !ctx->is_object()) return c;
    if (const json::Value* v = ctx->find("library_build_type");
        v != nullptr && v->is_string()) {
        c.build_type = v->as_string();
        c.has_build_type = true;
    }
    if (const json::Value* v = ctx->find("num_cpus"); v != nullptr && v->is_number()) {
        c.num_cpus = v->as_number();
        c.has_num_cpus = true;
    }
    return c;
}

void compare_contexts(const json::Value& baseline, const json::Value& current,
                      DiffResult& result) {
    const RunContext base = collect_context(baseline);
    const RunContext cur = collect_context(current);
    if (base.has_build_type && cur.has_build_type && base.build_type != cur.build_type) {
        // Debug-vs-release timings differ by integer factors: comparing
        // them silently would make every gate meaningless.
        result.context_mismatch = true;
        result.context_notes.push_back("context: library_build_type mismatch ('" +
                                       base.build_type + "' baseline vs '" +
                                       cur.build_type + "' current)");
    }
    if (base.has_num_cpus && cur.has_num_cpus && base.num_cpus != cur.num_cpus) {
        // Different core counts skew threaded rows; warn but keep comparing.
        result.context_notes.push_back(
            "context: num_cpus differ (" +
            std::to_string(static_cast<long long>(base.num_cpus)) + " baseline vs " +
            std::to_string(static_cast<long long>(cur.num_cpus)) + " current)");
    }
}

bool is_regression(const Metric& m, double rel_delta, double abs_delta, double threshold) {
    switch (m.dir) {
        case Direction::up:
            if (m.zero_tolerance) return abs_delta > 0.0;
            return rel_delta > threshold;
        case Direction::down:
            return rel_delta < -threshold;
        case Direction::none:
            break;
    }
    return false;
}

}  // namespace

DiffResult diff_documents(const json::Value& baseline, const json::Value& current,
                          const DiffOptions& opts) {
    auto base_metrics = collect_metrics(baseline);
    auto cur_metrics = collect_metrics(current);
    if (!opts.only.empty()) {
        const auto filtered_out = [&](const Metric& m) {
            return m.name.find(opts.only) == std::string::npos;
        };
        std::erase_if(base_metrics, filtered_out);
        std::erase_if(cur_metrics, filtered_out);
    }

    std::map<std::string, const Metric*> cur_by_name;
    for (const auto& m : cur_metrics) cur_by_name.emplace(m.name, &m);

    DiffResult result;
    compare_contexts(baseline, current, result);
    constexpr double kEps = 1e-12;
    for (const auto& base : base_metrics) {
        DiffRow row;
        row.name = base.name;
        row.baseline = base.value;
        row.in_baseline = true;
        const auto it = cur_by_name.find(base.name);
        if (it == cur_by_name.end()) {
            ++result.missing;
            result.rows.push_back(std::move(row));
            continue;
        }
        const Metric& cur = *it->second;
        cur_by_name.erase(it);
        row.in_current = true;
        row.current = cur.value;
        const double abs_delta = cur.value - base.value;
        row.rel_delta = abs_delta / std::max(std::abs(base.value), kEps);
        row.regression = is_regression(base, row.rel_delta, abs_delta, opts.threshold);
        if (row.regression) ++result.regressions;
        result.rows.push_back(std::move(row));
    }
    // Metrics only in the current run (new benches/probes): informational.
    for (const auto& m : cur_metrics) {
        if (cur_by_name.find(m.name) == cur_by_name.end()) continue;
        DiffRow row;
        row.name = m.name;
        row.current = m.value;
        row.in_current = true;
        ++result.missing;
        result.rows.push_back(std::move(row));
    }
    return result;
}

DiffResult diff_files(const std::string& baseline_path, const std::string& current_path,
                      const DiffOptions& opts) {
    const auto baseline = parse_diff_input(baseline_path);
    const auto current = parse_diff_input(current_path);
    return diff_documents(baseline, current, opts);
}

std::string DiffResult::render(const DiffOptions& opts) const {
    if (rows.empty() && context_notes.empty()) return {};
    std::string header;
    for (const auto& note : context_notes) {
        header += note;
        header += '\n';
    }
    if (context_mismatch) {
        header += opts.allow_context_mismatch
                      ? "context mismatch overridden by --allow-context-mismatch\n"
                      : "CONTEXT MISMATCH: runs are not comparable "
                        "(--allow-context-mismatch to compare anyway)\n";
    }
    if (rows.empty()) return header;
    ConsoleTable t({"metric", "baseline", "current", "delta [%]", "status"});
    for (const auto& r : rows) {
        std::string status = "ok";
        if (r.missing()) {
            status = r.in_baseline ? "missing" : "new";
        } else if (r.regression) {
            status = "REGRESSION";
        }
        t.add_row({r.name, r.in_baseline ? ConsoleTable::num(r.baseline, 6) : "-",
                   r.in_current ? ConsoleTable::num(r.current, 6) : "-",
                   r.missing() ? "-" : ConsoleTable::num(100.0 * r.rel_delta, 2), status});
    }
    std::string out = header + t.str("run comparison (threshold " +
                                     ConsoleTable::num(100.0 * opts.threshold, 4) + "%)");
    out += '\n';
    out += std::to_string(rows.size() - missing) + " compared, " +
           std::to_string(regressions) + " regression(s), " + std::to_string(missing) +
           " unmatched\n";
    if (regressions != 0 && opts.warn_only) {
        out += "warn-only mode: regressions reported but not fatal\n";
    }
    return out;
}

int DiffResult::exit_code(const DiffOptions& opts) const {
    // A build-type mismatch invalidates the comparison itself, so it stays
    // fatal even under warn-only — only the explicit override clears it.
    if (context_mismatch && !opts.allow_context_mismatch) return 2;
    if (opts.warn_only) return 0;
    return regressions == 0 ? 0 : 1;
}

}  // namespace cbs::obs
