// Telemetry stream analysis behind tools/cbs-telemetry: reads a JSONL
// stream written by obs::Telemetry, reduces each series to its trend
// (first->last completed-window mean over elapsed series time), worst drift
// rate and Allan floor, and diffs two streams with direction-aware
// thresholds so CI can gate on *trends* — a run whose endpoint aggregates
// look fine but whose drift rate doubled fails here.
//
// Trend rates are computed from sample counts and tau0 (series time), never
// from record wall-clock timestamps, so the gate is deterministic: the same
// simulated run produces the same trends regardless of host speed.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/diff.hpp"

namespace cbs::obs {

/// Per-series reduction over a whole stream.
struct SeriesTrend {
    std::string name;
    std::uint64_t records = 0;  ///< records containing this series
    std::uint64_t samples = 0;  ///< finite samples at the last record
    std::uint64_t non_finite = 0;
    double tau0 = 0.0;
    double final_mean = 0.0;
    double final_stddev = 0.0;
    /// Completed-window level at the first/last record that had one.
    bool have_window = false;
    double first_win_mean = 0.0;
    double last_win_mean = 0.0;
    double last_win_stddev = 0.0;
    /// (last_win_mean - first_win_mean) / ((n_last - n_first) * tau0):
    /// mean level change per second of series time across the stream.
    /// 0 unless two records with completed windows exist.
    double trend_per_s = 0.0;
    /// Largest |drift_per_s| any record reported.
    double max_abs_drift_per_s = 0.0;
    /// Allan floor at the last record (0 while the ladder was empty).
    double allan_floor = 0.0;
};

/// Whole-stream reduction.
struct StreamSummary {
    std::string origin;          ///< file path or label (diagnostics)
    std::uint64_t records = 0;
    std::vector<SeriesTrend> series;  ///< sorted by name
    // Event severity totals at the last record.
    std::uint64_t events_info = 0;
    std::uint64_t events_warning = 0;
    std::uint64_t events_fault = 0;

    /// Console rendering: stream header + one table row per series.
    [[nodiscard]] std::string render() const;
};

/// Parses a JSONL telemetry stream. `origin` names the source in
/// diagnostics. Throws cbs::json::ParseError — naming the origin and the
/// offending line — on an empty stream, a malformed line, or a line that is
/// not a telemetry record.
[[nodiscard]] StreamSummary summarize_text(std::string_view text,
                                           const std::string& origin);

/// Reads and summarizes the stream at `path`. Throws cbs::json::ParseError
/// (naming the path) when the file is unreadable, empty or malformed.
[[nodiscard]] StreamSummary summarize_file(const std::string& path);

/// Compares two stream summaries series-by-series with direction-aware
/// thresholds: |trend_per_s|, max |drift_per_s|, the Allan floor and the
/// window stddev regress upward; series non_finite counts and stream fault
/// totals regress on ANY increase; means and sample counts are
/// informational. Reuses the DiffOptions/DiffResult machinery (threshold,
/// warn_only, only-filter, rendering, exit codes) from obs/diff.hpp.
[[nodiscard]] DiffResult diff_streams(const StreamSummary& baseline,
                                      const StreamSummary& current,
                                      const DiffOptions& opts);

}  // namespace cbs::obs
