#include "obs/watchdog.hpp"

#include <cmath>

#include "obs/probe.hpp"
#include "util/expect.hpp"

namespace cbs::obs {

void Watchdog::raise(std::uint64_t sample_index, double v, std::string message) {
    ++fires_;
    if (fires_ <= kMaxRaises) {
        Event e;
        e.severity = severity_;
        e.kind = kind_;
        e.probe = owner_ != nullptr ? owner_->name() : std::string{};
        e.sample_index = sample_index;
        e.value = v;
        e.message = std::move(message);
        if (fires_ == kMaxRaises) e.message += " (further fires suppressed)";
        EventLog::instance().append(std::move(e));
    }
    if (owner_ != nullptr && severity_ == Severity::fault) {
        owner_->on_fault(kind_, sample_index);
    }
}

RangeWatchdog::RangeWatchdog(double lo, double hi, Severity severity)
    : Watchdog("range", severity), lo_(lo), hi_(hi) {
    CBS_EXPECTS(lo < hi);
}

void RangeWatchdog::observe(std::uint64_t sample_index, double v) {
    if (v < lo_ || v > hi_) {
        raise(sample_index, v,
              "outside [" + std::to_string(lo_) + ", " + std::to_string(hi_) + "]");
    }
}

StuckAtWatchdog::StuckAtWatchdog(std::uint64_t threshold, Severity severity)
    : Watchdog("stuck_at", severity), threshold_(threshold) {
    CBS_EXPECTS(threshold >= 2);
}

void StuckAtWatchdog::observe(std::uint64_t sample_index, double v) {
    if (have_last_ && v == last_) {
        ++run_;
        if (run_ + 1 >= threshold_ && !latched_) {
            latched_ = true;
            raise(sample_index, v, std::to_string(threshold_) + " identical samples");
        }
        return;
    }
    have_last_ = true;
    last_ = v;
    run_ = 0;
    latched_ = false;
}

void StuckAtWatchdog::reset() {
    Watchdog::reset();
    have_last_ = false;
    run_ = 0;
    latched_ = false;
}

DriftWatchdog::DriftWatchdog(double threshold, double alpha, std::uint64_t warmup,
                             Severity severity)
    : Watchdog("drift", severity), threshold_(threshold), alpha_(alpha), warmup_(warmup) {
    CBS_EXPECTS(threshold > 0.0);
    CBS_EXPECTS(alpha > 0.0 && alpha <= 1.0);
}

void DriftWatchdog::observe(std::uint64_t sample_index, double v) {
    ++n_;
    if (n_ == 1) {
        ewma_ = v;
        mean_ = v;
        return;
    }
    ewma_ += alpha_ * (v - ewma_);
    mean_ += (v - mean_) / static_cast<double>(n_);
    if (n_ < warmup_) return;
    const double gap = std::abs(ewma_ - mean_);
    if (gap > threshold_) {
        if (!latched_) {
            latched_ = true;
            raise(sample_index, v,
                  "ewma departed mean by " + std::to_string(gap) + " (> " +
                      std::to_string(threshold_) + ")");
        }
    } else {
        latched_ = false;
    }
}

void DriftWatchdog::reset() {
    Watchdog::reset();
    ewma_ = 0.0;
    mean_ = 0.0;
    n_ = 0;
    latched_ = false;
}

LockLossWatchdog::LockLossWatchdog(double lock_level, double drop_fraction, double alpha,
                                   std::uint64_t warmup, Severity severity)
    : Watchdog("lock_loss", severity),
      lock_level_(lock_level),
      drop_fraction_(drop_fraction),
      alpha_(alpha),
      warmup_(warmup) {
    CBS_EXPECTS(lock_level > 0.0);
    CBS_EXPECTS(drop_fraction > 0.0 && drop_fraction < 1.0);
    CBS_EXPECTS(alpha > 0.0 && alpha <= 1.0);
}

void LockLossWatchdog::observe(std::uint64_t sample_index, double v) {
    ++n_;
    envelope_ += alpha_ * (std::abs(v) - envelope_);
    if (n_ < warmup_) return;
    if (!locked_) {
        locked_ = envelope_ >= lock_level_;
        if (locked_) peak_ = envelope_;
        return;
    }
    if (envelope_ > peak_) peak_ = envelope_;
    if (envelope_ < drop_fraction_ * peak_) {
        if (!latched_) {
            latched_ = true;
            raise(sample_index, v,
                  "envelope " + std::to_string(envelope_) + " fell below " +
                      std::to_string(drop_fraction_) + " of peak " + std::to_string(peak_));
        }
    } else {
        latched_ = false;
    }
}

void LockLossWatchdog::reset() {
    Watchdog::reset();
    envelope_ = 0.0;
    peak_ = 0.0;
    n_ = 0;
    locked_ = false;
    latched_ = false;
}

}  // namespace cbs::obs
