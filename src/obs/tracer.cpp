#include "obs/tracer.hpp"

#include <fstream>
#include <functional>
#include <map>
#include <thread>

#include "util/expect.hpp"

namespace cbs::obs {

namespace {

std::chrono::steady_clock::time_point epoch() {
    static const auto t0 = std::chrono::steady_clock::now();
    return t0;
}

std::uint64_t this_thread_id() {
    return std::hash<std::thread::id>{}(std::this_thread::get_id()) % 100000;
}

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            out += ' ';
        } else {
            out += c;
        }
    }
    return out;
}

thread_local std::string tl_thread_name;

}  // namespace

void set_thread_name(std::string_view name) { tl_thread_name.assign(name); }

const std::string& thread_name() noexcept { return tl_thread_name; }

SpanTracer& SpanTracer::instance() {
    static SpanTracer tracer;
    (void)epoch();  // pin the epoch no later than first tracer use
    return tracer;
}

void SpanTracer::record(std::string name, std::string category, double start_us,
                        double duration_us) {
    const std::lock_guard lock(mu_);
    events_.push_back({std::move(name), std::move(category), start_us, duration_us,
                       this_thread_id(), tl_thread_name});
}

std::vector<SpanEvent> SpanTracer::events() const {
    const std::lock_guard lock(mu_);
    return events_;
}

std::size_t SpanTracer::size() const {
    const std::lock_guard lock(mu_);
    return events_.size();
}

void SpanTracer::clear() {
    const std::lock_guard lock(mu_);
    events_.clear();
}

void SpanTracer::write_chrome_json(const std::string& path) const {
    const auto evts = events();
    std::ofstream out(path);
    CBS_EXPECTS(out.good());
    out << "{\"traceEvents\":[";
    bool first = true;
    // One thread_name metadata event per named tid, so chrome://tracing and
    // Perfetto label worker rows instead of showing anonymous tids.
    std::map<std::uint64_t, std::string> names;
    for (const auto& e : evts) {
        if (!e.thread_name.empty()) names.emplace(e.thread_id, e.thread_name);
    }
    for (const auto& [tid, tname] : names) {
        if (!first) out << ',';
        first = false;
        out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
            << ",\"args\":{\"name\":\"" << json_escape(tname) << "\"}}";
    }
    for (const auto& e : evts) {
        if (!first) out << ',';
        first = false;
        out << "{\"name\":\"" << json_escape(e.name) << "\",\"cat\":\""
            << json_escape(e.category) << "\",\"ph\":\"X\",\"ts\":" << e.start_us
            << ",\"dur\":" << e.duration_us << ",\"pid\":1,\"tid\":" << e.thread_id << '}';
    }
    out << "],\"displayTimeUnit\":\"ms\"}\n";
}

void SpanTracer::write_csv(const std::string& path) const {
    const auto evts = events();
    std::ofstream out(path);
    CBS_EXPECTS(out.good());
    out << "name,category,start_us,duration_us,thread,thread_name\n";
    for (const auto& e : evts) {
        out << e.name << ',' << e.category << ',' << e.start_us << ',' << e.duration_us
            << ',' << e.thread_id << ',' << e.thread_name << '\n';
    }
}

double SpanTracer::now_us() {
    return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                     epoch())
        .count();
}

ScopedTimer::ScopedTimer(const char* name, const char* category)
    : name_(name), category_(category), active_(enabled()) {
    if (active_) t0_ = std::chrono::steady_clock::now();
}

ScopedTimer::~ScopedTimer() {
    if (!active_) return;
    const auto t1 = std::chrono::steady_clock::now();
    const double ns = std::chrono::duration<double, std::nano>(t1 - t0_).count();
    MetricsRegistry::instance().histogram(std::string("span.") + name_)->observe(ns);
    if (tracing()) {
        const double end_us =
            std::chrono::duration<double, std::micro>(t1 - epoch()).count();
        SpanTracer::instance().record(name_, category_, end_us - ns / 1e3, ns / 1e3);
    }
}

}  // namespace cbs::obs
