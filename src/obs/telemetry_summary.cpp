#include "obs/telemetry_summary.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

#include "util/json.hpp"
#include "util/table.hpp"

namespace cbs::obs {

namespace {

/// Per-series accumulation state while walking the stream.
struct TrendAccum {
    SeriesTrend trend;
    bool have_first_window = false;
    std::uint64_t n_at_first_window = 0;
    std::uint64_t n_at_last_window = 0;
};

double number_or_zero(const json::Value& obj, std::string_view key) {
    const json::Value* v = obj.find(key);
    if (v == nullptr || !v->is_number()) return 0.0;
    return v->as_number();
}

void fold_series(const json::Value& s, std::map<std::string, TrendAccum>& acc) {
    const std::string& name = s.at("name").as_string();
    TrendAccum& a = acc[name];
    SeriesTrend& t = a.trend;
    t.name = name;
    ++t.records;
    t.samples = static_cast<std::uint64_t>(number_or_zero(s, "n"));
    t.non_finite = static_cast<std::uint64_t>(number_or_zero(s, "non_finite"));
    t.tau0 = number_or_zero(s, "tau0");
    t.final_mean = number_or_zero(s, "mean");
    t.final_stddev = number_or_zero(s, "stddev");
    t.max_abs_drift_per_s =
        std::max(t.max_abs_drift_per_s, std::abs(number_or_zero(s, "drift_per_s")));
    t.allan_floor = number_or_zero(s, "allan_floor");

    const auto win_n = static_cast<std::uint64_t>(number_or_zero(s, "win_n"));
    if (win_n == 0) return;  // no completed window at this record yet
    const double win_mean = number_or_zero(s, "win_mean");
    if (!a.have_first_window) {
        a.have_first_window = true;
        t.have_window = true;
        t.first_win_mean = win_mean;
        a.n_at_first_window = t.samples;
    }
    t.last_win_mean = win_mean;
    t.last_win_stddev = number_or_zero(s, "win_stddev");
    a.n_at_last_window = t.samples;
}

}  // namespace

StreamSummary summarize_text(std::string_view text, const std::string& origin) {
    StreamSummary out;
    out.origin = origin;
    std::map<std::string, TrendAccum> acc;

    std::size_t line_no = 0;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        const std::size_t nl = text.find('\n', pos);
        const std::string_view line =
            text.substr(pos, nl == std::string_view::npos ? std::string_view::npos
                                                          : nl - pos);
        pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
        ++line_no;
        if (line.find_first_not_of(" \t\r") == std::string_view::npos) continue;

        json::Value record;
        try {
            record = json::Value::parse(line);
        } catch (const json::ParseError& e) {
            throw json::ParseError("'" + origin + "' line " + std::to_string(line_no) +
                                   ": " + e.what());
        }
        if (!record.is_object() || record.find("seq") == nullptr ||
            record.find("series") == nullptr) {
            throw json::ParseError("'" + origin + "' line " + std::to_string(line_no) +
                                   ": not a telemetry record (expected an object "
                                   "with \"seq\" and \"series\")");
        }
        ++out.records;

        const json::Value& series = record.at("series");
        for (std::size_t i = 0; i < series.size(); ++i) fold_series(series.at(i), acc);

        if (const json::Value* ev = record.find("events"); ev != nullptr && ev->is_object()) {
            out.events_info = static_cast<std::uint64_t>(number_or_zero(*ev, "info"));
            out.events_warning = static_cast<std::uint64_t>(number_or_zero(*ev, "warning"));
            out.events_fault = static_cast<std::uint64_t>(number_or_zero(*ev, "fault"));
        }
    }

    if (out.records == 0) {
        throw json::ParseError("'" + origin + "': empty telemetry stream (no records)");
    }

    for (auto& [name, a] : acc) {
        SeriesTrend& t = a.trend;
        if (t.have_window && a.n_at_last_window > a.n_at_first_window && t.tau0 > 0.0) {
            const double elapsed_s =
                static_cast<double>(a.n_at_last_window - a.n_at_first_window) * t.tau0;
            t.trend_per_s = (t.last_win_mean - t.first_win_mean) / elapsed_s;
        }
        out.series.push_back(std::move(t));
    }
    // std::map iteration is already name-sorted; keep the contract explicit.
    std::sort(out.series.begin(), out.series.end(),
              [](const SeriesTrend& x, const SeriesTrend& y) { return x.name < y.name; });
    return out;
}

StreamSummary summarize_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw json::ParseError("cannot read '" + path + "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    return summarize_text(buf.str(), path);
}

std::string StreamSummary::render() const {
    std::string out = "telemetry stream: " + origin + "\n";
    out += std::to_string(records) + " record(s), " + std::to_string(series.size()) +
           " series; events info=" + std::to_string(events_info) +
           " warning=" + std::to_string(events_warning) +
           " fault=" + std::to_string(events_fault) + "\n";
    if (series.empty()) return out;
    ConsoleTable t({"series", "n", "mean", "win stddev", "trend [/s]", "max |drift| [/s]",
                    "allan floor", "nonfin"});
    for (const SeriesTrend& s : series) {
        t.add_row({s.name, std::to_string(s.samples), ConsoleTable::num(s.final_mean, 6),
                   s.have_window ? ConsoleTable::num(s.last_win_stddev, 6) : "-",
                   s.have_window ? ConsoleTable::num(s.trend_per_s, 6) : "-",
                   ConsoleTable::num(s.max_abs_drift_per_s, 6),
                   s.allan_floor > 0.0 ? ConsoleTable::num(s.allan_floor, 6) : "-",
                   std::to_string(s.non_finite)});
    }
    out += t.str("per-series trends");
    return out;
}

namespace {

// Same shape as diff.cpp's internal metric list, specialised to stream
// summaries: value + harmful direction + zero-tolerance flag per name.
struct StreamMetric {
    std::string name;
    double value = 0.0;
    int dir = 0;               // +1 regress up, -1 regress down, 0 informational
    bool zero_tolerance = false;
};

std::vector<StreamMetric> stream_metrics(const StreamSummary& s) {
    std::vector<StreamMetric> out;
    for (const SeriesTrend& t : s.series) {
        const std::string p = "series " + t.name;
        out.push_back({p + " |trend_per_s|", std::abs(t.trend_per_s), +1, false});
        out.push_back({p + " max|drift_per_s|", t.max_abs_drift_per_s, +1, false});
        out.push_back({p + " allan_floor", t.allan_floor, +1, false});
        if (t.have_window) {
            out.push_back({p + " win_stddev", t.last_win_stddev, +1, false});
        }
        out.push_back({p + " non_finite", static_cast<double>(t.non_finite), +1, true});
        out.push_back({p + " mean", t.final_mean, 0, false});
        out.push_back({p + " samples", static_cast<double>(t.samples), 0, false});
    }
    out.push_back({"stream records", static_cast<double>(s.records), 0, false});
    out.push_back({"stream events fault", static_cast<double>(s.events_fault), +1, true});
    out.push_back(
        {"stream events warning", static_cast<double>(s.events_warning), 0, false});
    return out;
}

}  // namespace

DiffResult diff_streams(const StreamSummary& baseline, const StreamSummary& current,
                        const DiffOptions& opts) {
    auto base_metrics = stream_metrics(baseline);
    auto cur_metrics = stream_metrics(current);
    if (!opts.only.empty()) {
        const auto filtered_out = [&](const StreamMetric& m) {
            return m.name.find(opts.only) == std::string::npos;
        };
        std::erase_if(base_metrics, filtered_out);
        std::erase_if(cur_metrics, filtered_out);
    }

    std::map<std::string, const StreamMetric*> cur_by_name;
    for (const auto& m : cur_metrics) cur_by_name.emplace(m.name, &m);

    DiffResult result;
    constexpr double kEps = 1e-12;
    for (const auto& base : base_metrics) {
        DiffRow row;
        row.name = base.name;
        row.baseline = base.value;
        row.in_baseline = true;
        const auto it = cur_by_name.find(base.name);
        if (it == cur_by_name.end()) {
            ++result.missing;
            result.rows.push_back(std::move(row));
            continue;
        }
        const StreamMetric& cur = *it->second;
        cur_by_name.erase(it);
        row.in_current = true;
        row.current = cur.value;
        const double abs_delta = cur.value - base.value;
        row.rel_delta = abs_delta / std::max(std::abs(base.value), kEps);
        if (base.dir > 0) {
            row.regression = base.zero_tolerance ? abs_delta > 0.0
                                                 : row.rel_delta > opts.threshold;
        } else if (base.dir < 0) {
            row.regression = row.rel_delta < -opts.threshold;
        }
        if (row.regression) ++result.regressions;
        result.rows.push_back(std::move(row));
    }
    for (const auto& m : cur_metrics) {
        if (cur_by_name.find(m.name) == cur_by_name.end()) continue;
        DiffRow row;
        row.name = m.name;
        row.current = m.value;
        row.in_current = true;
        ++result.missing;
        result.rows.push_back(std::move(row));
    }
    return result;
}

}  // namespace cbs::obs
