#include "obs/probe.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "obs/events.hpp"
#include "obs/flight_recorder.hpp"
#include "util/expect.hpp"

namespace cbs::obs {

std::size_t default_ring_capacity() {
    static const std::size_t capacity = [] {
        const char* v = std::getenv("CBS_OBS_RING");
        if (v == nullptr || *v == '\0') return std::size_t{256};
        char* end = nullptr;
        const long parsed = std::strtol(v, &end, 10);
        if (end == v || *end != '\0' || parsed < 1) return std::size_t{256};
        return static_cast<std::size_t>(parsed);
    }();
    return capacity;
}

Probe::Probe(std::string name)
    : name_(std::move(name)), ring_capacity_(default_ring_capacity()) {
    ring_.reserve(ring_capacity_);
}

void Probe::record(std::span<const double> values) noexcept {
    const std::lock_guard lock(mu_);
    for (const double v : values) {
        const std::uint64_t index = taps_++;
        // Ring first: a triggering sample must be inside its own dump.
        if (ring_.size() < ring_capacity_) {
            ring_.push_back({index, v});
        } else {
            ring_[ring_head_] = {index, v};
            ring_head_ = (ring_head_ + 1) % ring_capacity_;
        }
        if (!std::isfinite(v)) {
            ++non_finite_;
            if (!non_finite_raised_) {
                non_finite_raised_ = true;
                EventLog::instance().append({Severity::fault, "non_finite", name_, index, v,
                                             "first non-finite sample"});
            }
            if (!dump_pending_) {
                dump_pending_ = true;
                dump_reason_ = "non_finite";
            }
            continue;  // keep NaN/Inf out of the running statistics
        }
        stats_.add(v);
        if (index % waveform_stride_ == 0) {
            if (waveform_.size() == kWaveformCapacity) {
                // Compact: keep every other point, double the stride.
                for (std::size_t i = 0; 2 * i < waveform_.size(); ++i) {
                    waveform_[i] = waveform_[2 * i];
                }
                waveform_.resize(kWaveformCapacity / 2);
                waveform_stride_ *= 2;
            }
            if (index % waveform_stride_ == 0) waveform_.push_back({index, v});
        }
        for (auto& dog : watchdogs_) dog->observe(index, v);
    }
    if (dump_pending_) {
        dump_pending_ = false;
        (void)dump_locked(dump_reason_, /*force=*/false);
    }
}

void Probe::on_fault(std::string_view kind, std::uint64_t) {
    // Called by Watchdog::raise with mu_ already held (watchdogs only run
    // inside record()); defer the file write to the end of the batch.
    if (!dump_pending_) {
        dump_pending_ = true;
        dump_reason_ = std::string(kind);
    }
}

ProbeStats Probe::stats() const {
    const std::lock_guard lock(mu_);
    ProbeStats s;
    s.n = stats_.count();
    s.non_finite = non_finite_;
    s.mean = stats_.mean();
    s.stddev = stats_.stddev();
    s.min = stats_.min();
    s.max = stats_.max();
    return s;
}

std::uint64_t Probe::sample_count() const {
    const std::lock_guard lock(mu_);
    return taps_;
}

std::vector<ProbeSample> Probe::waveform() const {
    const std::lock_guard lock(mu_);
    return waveform_;
}

std::uint64_t Probe::waveform_stride() const {
    const std::lock_guard lock(mu_);
    return waveform_stride_;
}

std::vector<ProbeSample> Probe::ring() const {
    const std::lock_guard lock(mu_);
    std::vector<ProbeSample> out;
    out.reserve(ring_.size());
    // ring_head_ is the oldest entry once the ring has wrapped.
    for (std::size_t i = 0; i < ring_.size(); ++i) {
        out.push_back(ring_[(ring_head_ + i) % ring_.size()]);
    }
    return out;
}

void Probe::set_ring_capacity(std::size_t capacity) {
    CBS_EXPECTS(capacity > 0);
    const std::lock_guard lock(mu_);
    ring_capacity_ = capacity;
    ring_.clear();
    ring_.reserve(capacity);
    ring_head_ = 0;
}

void Probe::add_watchdog(std::unique_ptr<Watchdog> dog) {
    CBS_EXPECTS(dog != nullptr);
    const std::lock_guard lock(mu_);
    for (const auto& existing : watchdogs_) {
        if (existing->kind() == dog->kind()) return;  // idempotent per kind
    }
    dog->owner_ = this;
    watchdogs_.push_back(std::move(dog));
}

bool Probe::has_watchdog(std::string_view kind) const {
    const std::lock_guard lock(mu_);
    for (const auto& dog : watchdogs_) {
        if (dog->kind() == kind) return true;
    }
    return false;
}

std::string Probe::dump_flight(std::string_view reason, bool force) {
    const std::lock_guard lock(mu_);
    return dump_locked(reason, force);
}

std::string Probe::dump_locked(std::string_view reason, bool force) {
    if (ring_.empty()) return {};
    if (dump_spent_ && !force) return {};
    dump_spent_ = true;
    std::vector<ProbeSample> snapshot;
    snapshot.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i) {
        snapshot.push_back(ring_[(ring_head_ + i) % ring_.size()]);
    }
    return FlightRecorder::instance().write(name_, snapshot, reason);
}

void Probe::reset() {
    const std::lock_guard lock(mu_);
    stats_ = stats::RunningStats{};
    taps_ = 0;
    non_finite_ = 0;
    non_finite_raised_ = false;
    waveform_.clear();
    waveform_stride_ = 1;
    ring_.clear();
    ring_head_ = 0;
    dump_pending_ = false;
    dump_spent_ = false;
    for (auto& dog : watchdogs_) dog->reset();
}

ProbeRegistry& ProbeRegistry::instance() {
    static ProbeRegistry registry;
    return registry;
}

ProbeRegistry::ProbeRegistry() {
    const char* v = std::getenv("CBS_OBS_PROBES");
    if (v != nullptr) spec_ = v;
}

Probe* ProbeRegistry::probe(std::string_view name) {
    CBS_EXPECTS(!name.empty());
    const std::lock_guard lock(mu_);
    for (auto& [n, p] : probes_) {
        if (n == name) return p.get();
    }
    auto owned = std::unique_ptr<Probe>(new Probe(std::string(name)));
    Probe* raw = owned.get();
    raw->set_armed(spec_matches(spec_, name));
    probes_.emplace_back(std::string(name), std::move(owned));
    return raw;
}

Probe* ProbeRegistry::find(std::string_view name) const {
    const std::lock_guard lock(mu_);
    for (const auto& [n, p] : probes_) {
        if (n == name) return p.get();
    }
    return nullptr;
}

std::vector<Probe*> ProbeRegistry::probes() const {
    const std::lock_guard lock(mu_);
    std::vector<Probe*> out;
    out.reserve(probes_.size());
    for (const auto& [n, p] : probes_) out.push_back(p.get());
    std::sort(out.begin(), out.end(),
              [](const Probe* a, const Probe* b) { return a->name() < b->name(); });
    return out;
}

void ProbeRegistry::set_spec(std::string spec) {
    const std::lock_guard lock(mu_);
    spec_ = std::move(spec);
    for (auto& [n, p] : probes_) p->set_armed(spec_matches(spec_, n));
}

std::string ProbeRegistry::spec() const {
    const std::lock_guard lock(mu_);
    return spec_;
}

bool ProbeRegistry::spec_matches(std::string_view spec, std::string_view name) {
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        const std::size_t comma = std::min(spec.find(',', pos), spec.size());
        std::string_view token = spec.substr(pos, comma - pos);
        // Trim surrounding spaces.
        while (!token.empty() && token.front() == ' ') token.remove_prefix(1);
        while (!token.empty() && token.back() == ' ') token.remove_suffix(1);
        if (!token.empty()) {
            if (token == "*") return true;
            if (token.back() == '*') {
                if (name.starts_with(token.substr(0, token.size() - 1))) return true;
            } else if (name == token) {
                return true;
            }
        }
        pos = comma + 1;
    }
    return false;
}

void ProbeRegistry::reset_all() {
    // Snapshot first: Probe::reset takes the probe's own lock and must not
    // run under the registry lock while another thread registers probes.
    for (Probe* p : probes()) p->reset();
}

}  // namespace cbs::obs
