// Span tracing: coarse-grained RAII timers recording named intervals that
// can be written as a chrome://tracing-compatible JSON file (and a flat CSV
// for scripting). Spans are meant for run/section granularity — per-sample
// work belongs in the obs::Histogram metrics, not here.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace cbs::obs {

struct SpanEvent {
    std::string name;
    std::string category;
    double start_us = 0.0;  ///< relative to the tracer's epoch
    double duration_us = 0.0;
    std::uint64_t thread_id = 0;
    std::string thread_name;  ///< obs::thread_name() at record time ("" if unset)
};

/// Names the calling thread for span attribution: every span recorded on
/// this thread from now on carries the name, and the chrome://tracing
/// export emits thread_name metadata so timelines group by worker (e.g.
/// "pool0.worker2") instead of anonymous tids. exec::ThreadPool names its
/// workers automatically; name the main thread from main() if desired.
void set_thread_name(std::string_view name);
/// The calling thread's name ("" when never set).
[[nodiscard]] const std::string& thread_name() noexcept;

/// Process-global buffer of completed spans.
class SpanTracer {
public:
    static SpanTracer& instance();

    void record(std::string name, std::string category, double start_us, double duration_us);

    [[nodiscard]] std::vector<SpanEvent> events() const;
    [[nodiscard]] std::size_t size() const;
    void clear();

    /// Chrome trace-event JSON ("X" complete events); load via
    /// chrome://tracing or https://ui.perfetto.dev.
    void write_chrome_json(const std::string& path) const;
    /// One line per span: name,category,start_us,duration_us,thread.
    void write_csv(const std::string& path) const;

    /// Microseconds since the tracer epoch (first use in the process).
    [[nodiscard]] static double now_us();

private:
    SpanTracer() = default;

    mutable std::mutex mu_;
    std::vector<SpanEvent> events_;
};

/// RAII section timer. When obs is enabled the duration is observed into
/// the registry histogram `span.<name>` (nanoseconds); at trace level the
/// interval is additionally recorded as a SpanTracer event.
class ScopedTimer {
public:
    explicit ScopedTimer(const char* name, const char* category = "cbs");
    ~ScopedTimer();

    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

private:
    const char* name_;
    const char* category_;
    bool active_;
    std::chrono::steady_clock::time_point t0_;
};

}  // namespace cbs::obs
