#include "obs/report.hpp"

#include <filesystem>
#include <iostream>

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "util/table.hpp"

namespace cbs::obs {

namespace {

RunReport::ProcessRow row_from_histogram(const std::string& name, const Histogram& h,
                                         std::string_view prefix) {
    RunReport::ProcessRow row;
    row.name = name.substr(prefix.size());
    row.ticks = h.count();
    row.total_ms = h.sum() / 1e6;
    row.mean_us = h.mean() / 1e3;
    row.p50_us = h.percentile(50.0) / 1e3;
    row.p99_us = h.percentile(99.0) / 1e3;
    row.max_us = h.max() / 1e3;
    return row;
}

void append_process_table(std::string& out, const std::string& title,
                          const std::string& label,
                          const std::vector<RunReport::ProcessRow>& rows) {
    if (rows.empty()) return;
    ConsoleTable t({label, "ticks", "total [ms]", "mean [us]", "p50 [us]", "p99 [us]",
                    "max [us]"});
    for (const auto& r : rows) {
        t.add_row({r.name, std::to_string(r.ticks), ConsoleTable::num(r.total_ms, 3),
                   ConsoleTable::num(r.mean_us, 3), ConsoleTable::num(r.p50_us, 3),
                   ConsoleTable::num(r.p99_us, 3), ConsoleTable::num(r.max_us, 3)});
    }
    out += t.str(title);
    out += '\n';
}

}  // namespace

RunReport RunReport::collect() {
    RunReport report;
    const auto snap = MetricsRegistry::instance().snapshot();
    for (const auto& [name, h] : snap.histograms) {
        if (name.starts_with("proc.")) {
            report.processes.push_back(row_from_histogram(name, *h, "proc."));
        } else if (name.starts_with("span.")) {
            report.spans.push_back(row_from_histogram(name, *h, "span."));
        }
    }
    for (const auto& [name, value] : snap.counters) report.counters.push_back({name, value});
    for (const auto& [name, value] : snap.gauges) report.gauges.push_back({name, value});
    return report;
}

std::string RunReport::render(const std::string& title) const {
    if (empty()) return {};
    std::string out;
    if (!title.empty()) out += "== " + title + " ==\n";
    append_process_table(out, "processes (per-tick wall time)", "process", processes);
    append_process_table(out, "sections (ScopedTimer spans)", "span", spans);
    if (!counters.empty()) {
        ConsoleTable t({"counter", "value"});
        for (const auto& c : counters) t.add_row({c.name, std::to_string(c.value)});
        out += t.str("counters");
        out += '\n';
    }
    if (!gauges.empty()) {
        ConsoleTable t({"gauge", "value"});
        for (const auto& g : gauges) t.add_row({g.name, ConsoleTable::num(g.value, 6)});
        out += t.str("gauges");
        out += '\n';
    }
    return out;
}

BenchSession::BenchSession(std::string name) : name_(std::move(name)) {
    if (tracing()) {
        // Anchor the trace epoch at session start so span timestamps are
        // relative to the bench run.
        (void)SpanTracer::now_us();
    }
}

BenchSession::~BenchSession() {
    if (!enabled()) return;
    const auto report = RunReport::collect();
    std::cout << '\n' << report.render("obs run report — " + name_);
    if (!tracing()) return;
    std::error_code ec;
    std::filesystem::create_directories(out_dir(), ec);
    const std::string base = out_dir() + "/" + name_ + "_trace";
    SpanTracer::instance().write_chrome_json(base + ".json");
    SpanTracer::instance().write_csv(base + ".csv");
    std::cout << "trace: " << base << ".json (chrome://tracing), " << base << ".csv ("
              << SpanTracer::instance().size() << " spans)\n";
}

}  // namespace cbs::obs
