#include "obs/report.hpp"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/probe.hpp"
#include "obs/scan_log.hpp"
#include "obs/telemetry.hpp"
#include "obs/tracer.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace cbs::obs {

namespace {

RunReport::ProcessRow row_from_histogram(const std::string& name, const Histogram& h,
                                         std::string_view prefix) {
    RunReport::ProcessRow row;
    row.name = name.substr(prefix.size());
    row.ticks = h.count();
    if (row.ticks == 0) return row;  // statistics stay 0; rendered as "n=0"
    row.total_ms = h.sum() / 1e6;
    row.mean_us = h.mean() / 1e3;
    row.p50_us = h.percentile(50.0) / 1e3;
    row.p99_us = h.percentile(99.0) / 1e3;
    row.max_us = h.max() / 1e3;
    return row;
}

void append_process_table(std::string& out, const std::string& title,
                          const std::string& label,
                          const std::vector<RunReport::ProcessRow>& rows) {
    if (rows.empty()) return;
    ConsoleTable t({label, "ticks", "total [ms]", "mean [us]", "p50 [us]", "p99 [us]",
                    "max [us]"});
    for (const auto& r : rows) {
        if (r.ticks == 0) {
            // Registered but never hit: show the instrument existed without
            // inventing statistics (the old path printed nan here).
            t.add_row({r.name, "0", "-", "-", "-", "-", "-"});
            continue;
        }
        t.add_row({r.name, std::to_string(r.ticks), ConsoleTable::num(r.total_ms, 3),
                   ConsoleTable::num(r.mean_us, 3), ConsoleTable::num(r.p50_us, 3),
                   ConsoleTable::num(r.p99_us, 3), ConsoleTable::num(r.max_us, 3)});
    }
    out += t.str(title);
    out += '\n';
}

// JSON writer helpers: non-finite doubles become null so the export always
// round-trips through a strict parser.
void append_number(std::string& out, double v) {
    if (!std::isfinite(v)) {
        out += "null";
        return;
    }
    std::ostringstream s;
    s.precision(17);
    s << v;
    out += s.str();
}

void append_process_json(std::string& out, const std::vector<RunReport::ProcessRow>& rows) {
    out += '[';
    bool first = true;
    for (const auto& r : rows) {
        if (!first) out += ',';
        first = false;
        out += "\n    {\"name\": \"" + json::escape(r.name) + "\", \"ticks\": " +
               std::to_string(r.ticks) + ", \"total_ms\": ";
        append_number(out, r.total_ms);
        out += ", \"mean_us\": ";
        append_number(out, r.mean_us);
        out += ", \"p50_us\": ";
        append_number(out, r.p50_us);
        out += ", \"p99_us\": ";
        append_number(out, r.p99_us);
        out += ", \"max_us\": ";
        append_number(out, r.max_us);
        out += '}';
    }
    out += rows.empty() ? "]" : "\n  ]";
}

}  // namespace

RunReport RunReport::collect() {
    RunReport report;
    const auto snap = MetricsRegistry::instance().snapshot();
    for (const auto& [name, h] : snap.histograms) {
        if (name.starts_with("proc.")) {
            report.processes.push_back(row_from_histogram(name, *h, "proc."));
        } else if (name.starts_with("span.")) {
            report.spans.push_back(row_from_histogram(name, *h, "span."));
        }
    }
    for (const auto& [name, value] : snap.counters) report.counters.push_back({name, value});
    for (const auto& [name, value] : snap.gauges) report.gauges.push_back({name, value});

    for (const Probe* p : ProbeRegistry::instance().probes()) {
        const auto s = p->stats();
        if (s.n == 0 && s.non_finite == 0 && !p->armed()) continue;
        ProbeRow row;
        row.name = p->name();
        row.n = s.n;
        row.non_finite = s.non_finite;
        if (s.n != 0) {
            row.mean = s.mean;
            row.stddev = s.stddev;
            row.min = s.min;
            row.max = s.max;
        }
        report.probes.push_back(std::move(row));
    }

    report.scans = ScanLog::instance().snapshot();

    auto& log = EventLog::instance();
    report.events.info = log.count_exact(Severity::info);
    report.events.warning = log.count_exact(Severity::warning);
    report.events.fault = log.count_exact(Severity::fault);
    std::istringstream rendered(log.render(20));
    for (std::string line; std::getline(rendered, line);) {
        report.events.lines.push_back(std::move(line));
    }
    return report;
}

std::string RunReport::render(const std::string& title) const {
    if (empty()) return {};
    std::string out;
    if (!title.empty()) out += "== " + title + " ==\n";
    append_process_table(out, "processes (per-tick wall time)", "process", processes);
    append_process_table(out, "sections (ScopedTimer spans)", "span", spans);
    if (!counters.empty()) {
        ConsoleTable t({"counter", "value"});
        for (const auto& c : counters) t.add_row({c.name, std::to_string(c.value)});
        out += t.str("counters");
        out += '\n';
    }
    if (!gauges.empty()) {
        ConsoleTable t({"gauge", "value"});
        for (const auto& g : gauges) t.add_row({g.name, ConsoleTable::num(g.value, 6)});
        out += t.str("gauges");
        out += '\n';
    }
    if (!probes.empty()) {
        ConsoleTable t({"probe", "n", "non-finite", "mean", "stddev", "min", "max"});
        for (const auto& p : probes) {
            if (p.n == 0) {
                t.add_row({p.name, "0", std::to_string(p.non_finite), "-", "-", "-", "-"});
                continue;
            }
            t.add_row({p.name, std::to_string(p.n), std::to_string(p.non_finite),
                       ConsoleTable::num(p.mean, 6), ConsoleTable::num(p.stddev, 6),
                       ConsoleTable::num(p.min, 6), ConsoleTable::num(p.max, 6)});
        }
        out += t.str("signal probes");
        out += '\n';
    }
    if (!scans.empty()) {
        ConsoleTable t({"scan", "grid", "sites", "functional", "refs", "mean raw [V]",
                        "mean comp [V]", "ref level [V]"});
        for (const auto& s : scans) {
            t.add_row({s.name, std::to_string(s.rows) + "x" + std::to_string(s.cols),
                       std::to_string(s.sites), std::to_string(s.functional),
                       std::to_string(s.reference_sites), ConsoleTable::num(s.mean_raw_v, 6),
                       ConsoleTable::num(s.mean_compensated_v, 6),
                       ConsoleTable::num(s.reference_level_v, 6)});
        }
        out += t.str("array scans");
        out += '\n';
    }
    if (events.total() != 0) {
        out += "events: " + std::to_string(events.total()) + " total (" +
               std::to_string(events.fault) + " fault, " + std::to_string(events.warning) +
               " warning, " + std::to_string(events.info) + " info)\n";
        for (const auto& line : events.lines) out += "  " + line + "\n";
        out += '\n';
    }
    return out;
}

std::string RunReport::to_json() const {
    std::string out = "{\n  \"processes\": ";
    append_process_json(out, processes);
    out += ",\n  \"spans\": ";
    append_process_json(out, spans);

    out += ",\n  \"counters\": {";
    bool first = true;
    for (const auto& c : counters) {
        if (!first) out += ',';
        first = false;
        out += "\n    \"" + json::escape(c.name) + "\": " + std::to_string(c.value);
    }
    out += counters.empty() ? "}" : "\n  }";

    out += ",\n  \"gauges\": {";
    first = true;
    for (const auto& g : gauges) {
        if (!first) out += ',';
        first = false;
        out += "\n    \"" + json::escape(g.name) + "\": ";
        append_number(out, g.value);
    }
    out += gauges.empty() ? "}" : "\n  }";

    out += ",\n  \"probes\": [";
    first = true;
    for (const auto& p : probes) {
        if (!first) out += ',';
        first = false;
        out += "\n    {\"name\": \"" + json::escape(p.name) + "\", \"n\": " +
               std::to_string(p.n) + ", \"non_finite\": " + std::to_string(p.non_finite) +
               ", \"mean\": ";
        append_number(out, p.mean);
        out += ", \"stddev\": ";
        append_number(out, p.stddev);
        out += ", \"min\": ";
        append_number(out, p.min);
        out += ", \"max\": ";
        append_number(out, p.max);
        out += '}';
    }
    out += probes.empty() ? "]" : "\n  ]";

    out += ",\n  \"scans\": [";
    first = true;
    for (const auto& s : scans) {
        if (!first) out += ',';
        first = false;
        out += "\n    {\"name\": \"" + json::escape(s.name) + "\", \"rows\": " +
               std::to_string(s.rows) + ", \"cols\": " + std::to_string(s.cols) +
               ", \"sites\": " + std::to_string(s.sites) +
               ", \"functional\": " + std::to_string(s.functional) +
               ", \"reference_sites\": " + std::to_string(s.reference_sites) +
               ", \"mean_raw_v\": ";
        append_number(out, s.mean_raw_v);
        out += ", \"sigma_raw_v\": ";
        append_number(out, s.sigma_raw_v);
        out += ", \"mean_compensated_v\": ";
        append_number(out, s.mean_compensated_v);
        out += ", \"sigma_compensated_v\": ";
        append_number(out, s.sigma_compensated_v);
        out += ", \"reference_level_v\": ";
        append_number(out, s.reference_level_v);
        out += '}';
    }
    out += scans.empty() ? "]" : "\n  ]";

    out += ",\n  \"events\": {\"info\": " + std::to_string(events.info) +
           ", \"warning\": " + std::to_string(events.warning) +
           ", \"fault\": " + std::to_string(events.fault) + "}";
    out += "\n}\n";
    return out;
}

bool RunReport::write_json(const std::string& path) const {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out.good()) return false;
    out << to_json();
    return out.good();
}

BenchSession::BenchSession(std::string name) : name_(std::move(name)) {
    if (tracing()) {
        // Anchor the trace epoch at session start so span timestamps are
        // relative to the bench run.
        (void)SpanTracer::now_us();
    }
    if (Telemetry::instance().active() && enabled()) {
        // Session-named stream so parallel benches don't clobber each other
        // and CI can pick the file up by name.
        std::error_code ec;
        std::filesystem::create_directories(out_dir(), ec);
        Telemetry::instance().set_sink(out_dir() + "/" + name_ + "_telemetry.jsonl");
    }
}

BenchSession::~BenchSession() {
    if (!enabled()) return;
    auto& telemetry = Telemetry::instance();
    if (telemetry.active()) {
        // Close the stream with a final record so even a bench that never
        // crossed the cadence emits at least one sample.
        telemetry.sample_now("bench." + name_);
        std::cout << "telemetry: " << telemetry.sink_path() << " ("
                  << telemetry.records_emitted() << " records, cbs-telemetry input)\n";
    }
    const auto report = RunReport::collect();
    std::cout << '\n' << report.render("obs run report — " + name_);
    if (!tracing()) return;
    std::error_code ec;
    std::filesystem::create_directories(out_dir(), ec);
    const std::string base = out_dir() + "/" + name_ + "_trace";
    SpanTracer::instance().write_chrome_json(base + ".json");
    SpanTracer::instance().write_csv(base + ".csv");
    const std::string report_path = out_dir() + "/" + name_ + "_report.json";
    if (report.write_json(report_path)) {
        std::cout << "report: " << report_path << " (cbs-obs-diff input)\n";
    }
    std::cout << "trace: " << base << ".json (chrome://tracing), " << base << ".csv ("
              << SpanTracer::instance().size() << " spans)\n";
}

}  // namespace cbs::obs
