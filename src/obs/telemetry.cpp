#include "obs/telemetry.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "obs/events.hpp"
#include "obs/probe.hpp"
#include "util/expect.hpp"
#include "util/json.hpp"

namespace cbs::obs {

namespace {

/// Tumbling-window drift is an EWMA-free first difference; the EWMA level
/// uses this smoothing weight (~100-sample memory).
constexpr double kEwmaAlpha = 0.01;

std::int64_t steady_now_us() {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/// Same contract as report.cpp: non-finite doubles serialize as null so the
/// stream always round-trips through the strict json::Value parser.
void append_number(std::string& out, double v) {
    if (!std::isfinite(v)) {
        out += "null";
        return;
    }
    std::ostringstream s;
    s.precision(17);
    s << v;
    out += s.str();
}

/// CBS_OBS_TELEMETRY: unset/unparsable/negative -> -1 (disabled), else
/// seconds (0 = manual emission).
double interval_from_env() {
    const char* env = std::getenv("CBS_OBS_TELEMETRY");
    if (env == nullptr || *env == '\0') return -1.0;
    char* end = nullptr;
    const double v = std::strtod(env, &end);
    if (end == env || *end != '\0') return -1.0;
    if (!std::isfinite(v) || v < 0.0) return -1.0;
    return v;
}

}  // namespace

// ---------------------------------------------------------------------------
// TelemetrySeries

TelemetrySeries::TelemetrySeries(std::string name, double tau0, std::size_t window,
                                 const std::atomic<bool>* active)
    : name_(std::move(name)),
      tau0_(tau0),
      window_(window),
      active_(active),
      allan_(tau0) {
    CBS_EXPECTS(tau0 > 0.0);
    CBS_EXPECTS(window >= 2);
}

void TelemetrySeries::record(std::span<const double> values) noexcept {
    std::lock_guard lock(mu_);
    for (double v : values) {
        if (!std::isfinite(v)) {
            ++non_finite_;
            continue;
        }
        overall_.add(v);
        allan_.add(v);
        if (ewma_primed_) {
            ewma_ += kEwmaAlpha * (v - ewma_);
        } else {
            ewma_ = v;
            ewma_primed_ = true;
        }
        win_.add(v);
        if (win_.count() == window_) {
            // Window complete: roll it over and update the drift rate from
            // the difference of consecutive window means. The elapsed
            // series time between window centres is window * tau0.
            const double mean = win_.mean();
            if (win_completed_ >= 1) {
                drift_per_s_ =
                    (mean - last_win_mean_) / (static_cast<double>(window_) * tau0_);
            }
            last_win_mean_ = mean;
            last_win_stddev_ = win_.stddev();
            ++win_completed_;
            win_ = stats::RunningStats{};
        }
    }
}

SeriesSnapshot TelemetrySeries::snapshot() const {
    std::lock_guard lock(mu_);
    SeriesSnapshot s;
    s.name = name_;
    s.n = overall_.count();
    s.non_finite = non_finite_;
    s.mean = overall_.mean();
    s.stddev = overall_.stddev();
    s.min = overall_.min();
    s.max = overall_.max();
    if (win_completed_ > 0) {
        s.win_n = window_;
        s.win_mean = last_win_mean_;
        s.win_stddev = last_win_stddev_;
    }
    s.drift_per_s = drift_per_s_;
    s.ewma = ewma_;
    s.tau0 = tau0_;
    s.allan = allan_.ladder();
    s.allan_floor = allan_.floor_adev();
    return s;
}

std::uint64_t TelemetrySeries::count() const {
    std::lock_guard lock(mu_);
    return overall_.count();
}

void TelemetrySeries::reset() {
    std::lock_guard lock(mu_);
    overall_ = stats::RunningStats{};
    non_finite_ = 0;
    win_ = stats::RunningStats{};
    win_completed_ = 0;
    last_win_mean_ = 0.0;
    last_win_stddev_ = 0.0;
    drift_per_s_ = 0.0;
    ewma_ = 0.0;
    ewma_primed_ = false;
    allan_.reset();
}

// ---------------------------------------------------------------------------
// Telemetry

Telemetry::Telemetry() {
    configure(interval_from_env());
    epoch_us_ = steady_now_us();
    records_counter_ = MetricsRegistry::instance().counter("obs.telemetry.records");
}

Telemetry::~Telemetry() = default;

Telemetry& Telemetry::instance() {
    static Telemetry t;
    return t;
}

TelemetrySeries* Telemetry::series(std::string_view name, double tau0,
                                   std::size_t window) {
    std::lock_guard lock(mu_);
    for (auto& [key, s] : series_) {
        if (key == name) return s.get();
    }
    auto s = std::unique_ptr<TelemetrySeries>(
        new TelemetrySeries(std::string(name), tau0, window, &active_));
    TelemetrySeries* raw = s.get();
    series_.emplace_back(std::string(name), std::move(s));
    return raw;
}

TelemetrySeries* Telemetry::find(std::string_view name) const {
    std::lock_guard lock(mu_);
    for (const auto& [key, s] : series_) {
        if (key == name) return s.get();
    }
    return nullptr;
}

std::vector<TelemetrySeries*> Telemetry::all_series() const {
    std::lock_guard lock(mu_);
    std::vector<TelemetrySeries*> out;
    out.reserve(series_.size());
    for (const auto& [key, s] : series_) out.push_back(s.get());
    std::sort(out.begin(), out.end(), [](const TelemetrySeries* a, const TelemetrySeries* b) {
        return a->name() < b->name();
    });
    return out;
}

double Telemetry::interval() const noexcept {
    const std::int64_t us = interval_us_.load(std::memory_order_relaxed);
    if (us < 0) return -1.0;
    return static_cast<double>(us) / 1e6;
}

void Telemetry::configure(double interval_s) {
    if (!std::isfinite(interval_s) || interval_s < 0.0) {
        interval_us_.store(-1, std::memory_order_relaxed);
        active_.store(false, std::memory_order_relaxed);
        return;
    }
    interval_us_.store(static_cast<std::int64_t>(interval_s * 1e6),
                       std::memory_order_relaxed);
    last_emit_us_.store(steady_now_us(), std::memory_order_relaxed);
    active_.store(true, std::memory_order_relaxed);
}

void Telemetry::maybe_sample(std::string_view source) {
    if (!active_.load(std::memory_order_relaxed)) return;
    const std::int64_t interval = interval_us_.load(std::memory_order_relaxed);
    if (interval <= 0) return;  // manual-emission mode or disabled
    if (!enabled()) return;
    const std::int64_t now = steady_now_us();
    std::int64_t last = last_emit_us_.load(std::memory_order_relaxed);
    if (now - last < interval) return;
    // One winner per elapsed interval; losers saw another thread emit.
    if (!last_emit_us_.compare_exchange_strong(last, now, std::memory_order_relaxed))
        return;
    std::lock_guard lock(emit_mu_);
    emit_locked(source);
}

std::uint64_t Telemetry::sample_now(std::string_view source) {
    if (!active_.load(std::memory_order_relaxed)) return 0;
    if (!enabled()) return 0;
    std::lock_guard lock(emit_mu_);
    last_emit_us_.store(steady_now_us(), std::memory_order_relaxed);
    return emit_locked(source);
}

std::uint64_t Telemetry::emit_locked(std::string_view source) {
    if (!sink_) {
        if (sink_path_.empty()) sink_path_ = out_dir() + "/telemetry.jsonl";
        sink_ = std::make_unique<std::ofstream>(sink_path_, std::ios::trunc);
        if (!*sink_) {
            sink_.reset();
            return 0;
        }
    }

    const std::uint64_t seq = ++seq_;
    std::string line;
    line.reserve(1024);
    line += "{\"seq\": " + std::to_string(seq);
    line += ", \"t_us\": " + std::to_string(steady_now_us() - epoch_us_);
    line += ", \"source\": \"" + json::escape(source) + "\"";

    line += ", \"series\": [";
    bool first = true;
    for (const TelemetrySeries* ts : all_series()) {
        const SeriesSnapshot s = ts->snapshot();
        if (!first) line += ", ";
        first = false;
        line += "{\"name\": \"" + json::escape(s.name) + "\"";
        line += ", \"n\": " + std::to_string(s.n);
        line += ", \"non_finite\": " + std::to_string(s.non_finite);
        line += ", \"mean\": ";
        append_number(line, s.mean);
        line += ", \"stddev\": ";
        append_number(line, s.stddev);
        line += ", \"min\": ";
        append_number(line, s.min);
        line += ", \"max\": ";
        append_number(line, s.max);
        line += ", \"win_n\": " + std::to_string(s.win_n);
        line += ", \"win_mean\": ";
        append_number(line, s.win_mean);
        line += ", \"win_stddev\": ";
        append_number(line, s.win_stddev);
        line += ", \"drift_per_s\": ";
        append_number(line, s.drift_per_s);
        line += ", \"ewma\": ";
        append_number(line, s.ewma);
        line += ", \"tau0\": ";
        append_number(line, s.tau0);
        line += ", \"allan\": [";
        for (std::size_t i = 0; i < s.allan.size(); ++i) {
            if (i > 0) line += ", ";
            line += "{\"tau\": ";
            append_number(line, s.allan[i].tau);
            line += ", \"adev\": ";
            append_number(line, s.allan[i].adev);
            line += ", \"pairs\": " + std::to_string(s.allan[i].pairs) + "}";
        }
        line += "], \"allan_floor\": ";
        append_number(line, s.allan_floor);
        line += "}";
    }
    line += "]";

    const MetricsRegistry::Snapshot snap = MetricsRegistry::instance().snapshot();
    line += ", \"counters\": {";
    first = true;
    for (const auto& c : snap.counters) {
        if (!first) line += ", ";
        first = false;
        line += "\"" + json::escape(c.name) + "\": " + std::to_string(c.value);
    }
    line += "}, \"gauges\": {";
    first = true;
    for (const auto& g : snap.gauges) {
        if (!first) line += ", ";
        first = false;
        line += "\"" + json::escape(g.name) + "\": ";
        append_number(line, g.value);
    }
    line += "}";

    line += ", \"probes\": [";
    first = true;
    for (const Probe* p : ProbeRegistry::instance().probes()) {
        if (!p->armed()) continue;
        const ProbeStats ps = p->stats();
        if (!first) line += ", ";
        first = false;
        line += "{\"name\": \"" + json::escape(p->name()) + "\"";
        line += ", \"n\": " + std::to_string(ps.n);
        line += ", \"non_finite\": " + std::to_string(ps.non_finite);
        line += ", \"mean\": ";
        append_number(line, ps.mean);
        line += ", \"stddev\": ";
        append_number(line, ps.stddev);
        line += ", \"min\": ";
        append_number(line, ps.min);
        line += ", \"max\": ";
        append_number(line, ps.max);
        line += "}";
    }
    line += "]";

    EventLog& log = EventLog::instance();
    line += ", \"events\": {\"info\": " + std::to_string(log.count_exact(Severity::info));
    line += ", \"warning\": " + std::to_string(log.count_exact(Severity::warning));
    line += ", \"fault\": " + std::to_string(log.count_exact(Severity::fault));
    line += "}}";

    *sink_ << line << '\n';
    sink_->flush();
    if (records_counter_ != nullptr) records_counter_->add(1);
    return seq;
}

void Telemetry::set_sink(std::string path) {
    std::lock_guard lock(emit_mu_);
    sink_path_ = std::move(path);
    sink_.reset();  // next record reopens (truncating) at the new path
}

std::string Telemetry::sink_path() const {
    std::lock_guard lock(emit_mu_);
    return sink_path_;
}

std::uint64_t Telemetry::records_emitted() const {
    std::lock_guard lock(emit_mu_);
    return seq_;
}

void Telemetry::reset() {
    for (TelemetrySeries* s : all_series()) s->reset();
    std::lock_guard lock(emit_mu_);
    seq_ = 0;
    sink_.reset();
    last_emit_us_.store(steady_now_us(), std::memory_order_relaxed);
}

}  // namespace cbs::obs
