#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>

#include "util/expect.hpp"

namespace cbs::obs {

namespace detail {

namespace {

int level_from_env() {
    const char* v = std::getenv("CBS_OBS");
    return static_cast<int>(v != nullptr ? parse_level(v) : Level::off);
}

}  // namespace

std::atomic<int> g_level{level_from_env()};

}  // namespace detail

Level parse_level(std::string_view text) {
    if (text == "summary") return Level::summary;
    if (text == "trace") return Level::trace;
    return Level::off;
}

void set_level(Level l) noexcept {
    detail::g_level.store(static_cast<int>(l), std::memory_order_relaxed);
}

namespace {

std::string& out_dir_storage() {
    static std::string dir = [] {
        const char* v = std::getenv("CBS_OBS_OUT");
        return std::string(v != nullptr && *v != '\0' ? v : ".");
    }();
    return dir;
}

}  // namespace

const std::string& out_dir() { return out_dir_storage(); }

void set_out_dir(std::string dir) {
    out_dir_storage() = dir.empty() ? std::string(".") : std::move(dir);
}

std::uint64_t Gauge::to_bits(double v) noexcept { return std::bit_cast<std::uint64_t>(v); }
double Gauge::from_bits(std::uint64_t b) noexcept { return std::bit_cast<double>(b); }

void Gauge::record_max(double v) noexcept {
    if (!enabled()) return;
    std::uint64_t bits = bits_.load(std::memory_order_relaxed);
    while (v > from_bits(bits) &&
           !bits_.compare_exchange_weak(bits, to_bits(v), std::memory_order_relaxed)) {
    }
}

Histogram::Histogram(std::span<const double> upper_bounds)
    : bounds_(upper_bounds.begin(), upper_bounds.end()),
      buckets_(bounds_.size() + 1),
      sum_bits_(std::bit_cast<std::uint64_t>(0.0)),
      min_bits_(std::bit_cast<std::uint64_t>(0.0)),
      max_bits_(std::bit_cast<std::uint64_t>(0.0)) {
    CBS_EXPECTS(!bounds_.empty());
    CBS_EXPECTS(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                std::adjacent_find(bounds_.begin(), bounds_.end()) == bounds_.end());
}

void Histogram::observe(double v) noexcept {
    if (!enabled()) return;
    // Half-open bucketing: v belongs to the first bucket whose upper bound
    // exceeds it, so an observation exactly on an edge goes to the bucket
    // above — including v == bounds_.back(), which consistently counts as
    // overflow (the old lower_bound rule put the top edge in the last
    // bucket while everything above it overflowed, an off-by-one trap for
    // exact-valued samples like quantized ADC codes).
    const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), v);
    const auto idx = static_cast<std::size_t>(it - bounds_.begin());
    buckets_[idx].fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t prev = count_.fetch_add(1, std::memory_order_relaxed);
    // sum / min / max via CAS; contention is negligible at report granularity.
    std::uint64_t bits = sum_bits_.load(std::memory_order_relaxed);
    while (!sum_bits_.compare_exchange_weak(bits,
                                            std::bit_cast<std::uint64_t>(
                                                std::bit_cast<double>(bits) + v),
                                            std::memory_order_relaxed)) {
    }
    if (prev == 0) {
        min_bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
        max_bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
        return;
    }
    bits = min_bits_.load(std::memory_order_relaxed);
    while (v < std::bit_cast<double>(bits) &&
           !min_bits_.compare_exchange_weak(bits, std::bit_cast<std::uint64_t>(v),
                                            std::memory_order_relaxed)) {
    }
    bits = max_bits_.load(std::memory_order_relaxed);
    while (v > std::bit_cast<double>(bits) &&
           !max_bits_.compare_exchange_weak(bits, std::bit_cast<std::uint64_t>(v),
                                            std::memory_order_relaxed)) {
    }
}

std::uint64_t Histogram::count() const noexcept {
    return count_.load(std::memory_order_relaxed);
}

double Histogram::sum() const noexcept {
    return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
}

double Histogram::min() const noexcept {
    return std::bit_cast<double>(min_bits_.load(std::memory_order_relaxed));
}

double Histogram::max() const noexcept {
    return std::bit_cast<double>(max_bits_.load(std::memory_order_relaxed));
}

double Histogram::mean() const noexcept {
    const auto n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::percentile(double p) const {
    CBS_EXPECTS(p >= 0.0 && p <= 100.0);
    const auto counts = bucket_counts();
    std::uint64_t total = 0;
    for (const auto c : counts) total += c;
    if (total == 0) return 0.0;
    const double rank = p / 100.0 * static_cast<double>(total);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        if (counts[i] == 0) continue;
        const double lo_count = static_cast<double>(cum);
        cum += counts[i];
        if (static_cast<double>(cum) < rank) continue;
        // Interpolate within [lo, hi] of this bucket. The overflow bucket
        // and the first bucket are clamped by the observed extremes.
        double lo = i == 0 ? min() : bounds_[i - 1];
        double hi = i < bounds_.size() ? bounds_[i] : max();
        lo = std::max(lo, min());
        hi = std::min(hi, max());
        if (hi <= lo) return hi;
        const double frac =
            std::clamp((rank - lo_count) / static_cast<double>(counts[i]), 0.0, 1.0);
        return lo + frac * (hi - lo);
    }
    return max();
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
    std::vector<std::uint64_t> out(buckets_.size());
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        out[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    return out;
}

void Histogram::reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_bits_.store(std::bit_cast<std::uint64_t>(0.0), std::memory_order_relaxed);
    min_bits_.store(std::bit_cast<std::uint64_t>(0.0), std::memory_order_relaxed);
    max_bits_.store(std::bit_cast<std::uint64_t>(0.0), std::memory_order_relaxed);
}

const std::vector<double>& Histogram::timing_bounds_ns() {
    static const std::vector<double> bounds = [] {
        std::vector<double> b;
        for (double v = 50.0; v < 2e9; v *= 2.0) b.push_back(v);
        return b;
    }();
    return bounds;
}

MetricsRegistry& MetricsRegistry::instance() {
    static MetricsRegistry registry;
    return registry;
}

namespace {

template <typename T, typename Make>
T* find_or_emplace(std::vector<std::pair<std::string, std::unique_ptr<T>>>& entries,
                   std::string_view name, Make make) {
    for (auto& [n, metric] : entries) {
        if (n == name) return metric.get();
    }
    entries.emplace_back(std::string(name), make());
    return entries.back().second.get();
}

}  // namespace

Counter* MetricsRegistry::counter(std::string_view name) {
    const std::lock_guard lock(mu_);
    return find_or_emplace(counters_, name, [] { return std::make_unique<Counter>(); });
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
    const std::lock_guard lock(mu_);
    return find_or_emplace(gauges_, name, [] { return std::make_unique<Gauge>(); });
}

Histogram* MetricsRegistry::histogram(std::string_view name) {
    return histogram(name, Histogram::timing_bounds_ns());
}

Histogram* MetricsRegistry::histogram(std::string_view name,
                                      std::span<const double> upper_bounds) {
    const std::lock_guard lock(mu_);
    return find_or_emplace(histograms_, name, [&] {
        return std::make_unique<Histogram>(upper_bounds);
    });
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
    const std::lock_guard lock(mu_);
    Snapshot s;
    for (const auto& [name, c] : counters_) {
        if (c->value() != 0) s.counters.push_back({name, c->value()});
    }
    for (const auto& [name, g] : gauges_) s.gauges.push_back({name, g->value()});
    for (const auto& [name, h] : histograms_) s.histograms.push_back({name, h.get()});
    const auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
    std::sort(s.counters.begin(), s.counters.end(), by_name);
    std::sort(s.gauges.begin(), s.gauges.end(), by_name);
    std::sort(s.histograms.begin(), s.histograms.end(), by_name);
    return s;
}

void MetricsRegistry::reset_all() {
    const std::lock_guard lock(mu_);
    for (auto& [name, c] : counters_) c->reset();
    for (auto& [name, g] : gauges_) g->reset();
    for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace cbs::obs
