// Umbrella header for the cbs::obs observability layer:
//   obs/metrics.hpp — CBS_OBS level, MetricsRegistry, Counter/Gauge/Histogram
//   obs/tracer.hpp  — SpanTracer + ScopedTimer (chrome://tracing output)
//   obs/report.hpp  — RunReport + BenchSession (end-of-run summary)
#pragma once

#include "obs/metrics.hpp"   // IWYU pragma: export
#include "obs/report.hpp"    // IWYU pragma: export
#include "obs/tracer.hpp"    // IWYU pragma: export
