// Umbrella header for the cbs::obs observability layer:
//   obs/metrics.hpp         — CBS_OBS level, MetricsRegistry, Counter/Gauge/Histogram
//   obs/tracer.hpp          — SpanTracer + ScopedTimer (chrome://tracing output)
//   obs/probe.hpp           — signal-level taps (stats/waveform/flight ring)
//   obs/watchdog.hpp        — online anomaly detectors raising events
//   obs/events.hpp          — structured event log (watchdog fires, faults)
//   obs/flight_recorder.hpp — ring dumps to CSV on trigger
//   obs/report.hpp          — RunReport + BenchSession (end-of-run summary/JSON)
//   obs/diff.hpp            — run-comparison engine (tools/cbs-obs-diff)
//   obs/telemetry.hpp       — continuous JSONL sampler (CBS_OBS_TELEMETRY)
//   obs/telemetry_summary.hpp — telemetry stream summary/diff (cbs-telemetry)
#pragma once

#include "obs/diff.hpp"               // IWYU pragma: export
#include "obs/events.hpp"             // IWYU pragma: export
#include "obs/flight_recorder.hpp"    // IWYU pragma: export
#include "obs/metrics.hpp"            // IWYU pragma: export
#include "obs/probe.hpp"              // IWYU pragma: export
#include "obs/report.hpp"             // IWYU pragma: export
#include "obs/telemetry.hpp"          // IWYU pragma: export
#include "obs/telemetry_summary.hpp"  // IWYU pragma: export
#include "obs/tracer.hpp"             // IWYU pragma: export
#include "obs/watchdog.hpp"           // IWYU pragma: export
