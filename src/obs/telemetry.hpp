// Continuous telemetry: periodic, O(1)-memory time-series sampling for
// long-running workloads.
//
// The paper's figure of merit is *stability over time* — drift, 1/f noise
// and the Allan-deviation floor set the detection limit — but RunReport
// (obs/report.hpp) only aggregates at end of run. obs::Telemetry is the
// time-resolved complement: signal paths push samples into named
// TelemetrySeries, each of which maintains
//   * overall streaming Welford statistics (stats::RunningStats),
//   * tumbling-window Welford statistics (window size fixed per series) and
//     the drift rate between consecutive completed windows,
//   * an EWMA level estimate,
//   * a streaming overlapping Allan-deviation ladder (util::StreamingAllan,
//     bit-identical to the batch util::allan_deviation on the same series),
// all in memory bounded by the window and ladder sizes — never by run
// length. On a configurable cadence the sampler snapshots every series, the
// MetricsRegistry, armed probes and the EventLog severity totals, and
// appends one JSON object per sample to a JSONL sink (one line per record;
// parse each line with json::Value::parse). tools/cbs-telemetry summarizes
// and diffs such streams for CI trend gating.
//
// Cadence — CBS_OBS_TELEMETRY:
//   unset / invalid / negative   telemetry disabled (the default)
//   0                            series collect, but records are emitted
//                                only by explicit sample_now() calls —
//                                deterministic record counts for CI
//   > 0                          wall-clock emission interval in seconds;
//                                maybe_sample() emits when it has elapsed
//
// Cost contract (same as obs/metrics.hpp and obs/probe.hpp):
//   * disabled (the default): TelemetrySeries::push() is one relaxed atomic
//     load and a predictable branch; maybe_sample() likewise,
//   * CBS_OBS=off: pushes stay no-ops regardless of CBS_OBS_TELEMETRY —
//     off means off,
//   * enabled: a push takes the series' own mutex; emission takes the
//     sampler mutex. Series pointers are stable — look up once, cache.
// Telemetry only *reads* the signal path: the PR 4 bit-identity suite pins
// that enabling it never changes a single output bit.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "util/allan.hpp"
#include "util/stats.hpp"

namespace cbs::obs {

/// Point-in-time view of one series, as serialized into each JSONL record.
struct SeriesSnapshot {
    std::string name;
    // Whole-run statistics (finite samples only).
    std::uint64_t n = 0;
    std::uint64_t non_finite = 0;
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
    // Last *completed* tumbling window (win_n == 0 until one completes).
    std::uint64_t win_n = 0;
    double win_mean = 0.0;
    double win_stddev = 0.0;
    /// Drift rate between the last two completed windows,
    /// (mean_k - mean_{k-1}) / (window * tau0) — per second of series time.
    /// 0 until two windows have completed.
    double drift_per_s = 0.0;
    double ewma = 0.0;  ///< exponentially weighted level (alpha = 0.01)
    double tau0 = 0.0;  ///< series sampling interval [s]
    std::vector<AllanPoint> allan;  ///< streaming octave ladder (may be empty)
    double allan_floor = 0.0;       ///< min adev over the ladder, 0 if empty
};

/// One named, bounded-memory time series. Created via Telemetry::series();
/// pointers are stable for the process lifetime.
class TelemetrySeries {
public:
    /// Records one sample. Near-zero cost unless telemetry is active and
    /// CBS_OBS is not off. Non-finite samples are counted, not folded in.
    void push(double v) noexcept {
        if (!active_->load(std::memory_order_relaxed)) return;
        if (!enabled()) return;
        record(std::span<const double>(&v, 1));
    }

    /// Records a whole batch under one lock; equivalent to push(v) per
    /// element in order.
    void push_block(std::span<const double> values) noexcept {
        if (!active_->load(std::memory_order_relaxed)) return;
        if (!enabled()) return;
        if (values.empty()) return;
        record(values);
    }

    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] double tau0() const noexcept { return tau0_; }
    [[nodiscard]] std::size_t window() const noexcept { return window_; }

    [[nodiscard]] SeriesSnapshot snapshot() const;
    /// Finite samples recorded so far.
    [[nodiscard]] std::uint64_t count() const;

    /// Forgets every sample; keeps name/tau0/window and registration.
    void reset();

private:
    friend class Telemetry;

    TelemetrySeries(std::string name, double tau0, std::size_t window,
                    const std::atomic<bool>* active);

    void record(std::span<const double> values) noexcept;

    std::string name_;
    double tau0_;
    std::size_t window_;
    const std::atomic<bool>* active_;  ///< Telemetry's master switch

    mutable std::mutex mu_;
    stats::RunningStats overall_;
    std::uint64_t non_finite_ = 0;
    stats::RunningStats win_;  ///< currently-filling window
    std::uint64_t win_completed_ = 0;
    double last_win_mean_ = 0.0;
    double last_win_stddev_ = 0.0;
    double drift_per_s_ = 0.0;
    double ewma_ = 0.0;
    bool ewma_primed_ = false;
    StreamingAllan allan_;
};

/// Process-global sampler and series registry.
class Telemetry {
public:
    static Telemetry& instance();

    /// Returns the series named `name`, creating it on first use with the
    /// given sampling interval `tau0` (seconds between pushes, feeds the
    /// Allan tau axis and drift rates) and tumbling-window size. Requesting
    /// an existing series ignores `tau0`/`window` and returns the
    /// registered one (same rule as MetricsRegistry::histogram).
    TelemetrySeries* series(std::string_view name, double tau0,
                            std::size_t window = 256);
    /// Lookup without creation; nullptr when absent.
    [[nodiscard]] TelemetrySeries* find(std::string_view name) const;
    /// All registered series, sorted by name.
    [[nodiscard]] std::vector<TelemetrySeries*> all_series() const;

    /// True when CBS_OBS_TELEMETRY configured collection on (interval >= 0).
    [[nodiscard]] bool active() const noexcept {
        return active_.load(std::memory_order_relaxed);
    }
    /// Configured cadence in seconds; 0 = manual emission, < 0 = disabled.
    [[nodiscard]] double interval() const noexcept;

    /// Emits a record if active, the cadence is time-based (interval > 0)
    /// and the interval has elapsed since the last record. Safe to call
    /// from hot loops: inactive cost is one relaxed load and a branch.
    void maybe_sample(std::string_view source);

    /// Unconditionally emits one record now (when active and CBS_OBS is not
    /// off) and returns its sequence number; 0 when nothing was emitted.
    /// This is the deterministic emission path (CBS_OBS_TELEMETRY=0).
    std::uint64_t sample_now(std::string_view source);

    /// Programmatic override of CBS_OBS_TELEMETRY: < 0 disables, 0 enables
    /// manual-emission mode, > 0 enables a wall-clock cadence in seconds.
    void configure(double interval_s);

    /// Replaces the JSONL sink path. The default sink, chosen at first
    /// emission, is "<out_dir()>/telemetry.jsonl". Takes effect on the next
    /// emitted record (the previous stream, if open, is closed).
    void set_sink(std::string path);
    [[nodiscard]] std::string sink_path() const;

    /// Records emitted since construction/reset.
    [[nodiscard]] std::uint64_t records_emitted() const;

    /// Clears every series and the emission state (sequence numbers restart
    /// at 1; the sink reopens — truncating — on the next record). Keeps the
    /// configured interval, sink path and series registrations.
    void reset();

private:
    Telemetry();
    ~Telemetry();  // out of line: sink_ holds an incomplete std::ofstream

    std::uint64_t emit_locked(std::string_view source);

    std::atomic<bool> active_{false};
    std::atomic<std::int64_t> interval_us_{-1};  ///< <0 off, 0 manual, >0 us
    std::atomic<std::int64_t> last_emit_us_{0};
    std::int64_t epoch_us_ = 0;  ///< steady-clock origin for record t_us

    mutable std::mutex mu_;  ///< series registry
    std::vector<std::pair<std::string, std::unique_ptr<TelemetrySeries>>> series_;

    mutable std::mutex emit_mu_;  ///< sink + sequence state
    std::string sink_path_;       ///< empty -> default chosen at first emit
    std::unique_ptr<std::ofstream> sink_;
    std::uint64_t seq_ = 0;

    Counter* records_counter_ = nullptr;  ///< obs.telemetry.records
};

}  // namespace cbs::obs
