// Run-comparison engine behind tools/cbs-obs-diff: loads two RunReport JSON
// exports (obs/report.hpp to_json()) or two google-benchmark JSON files
// (auto-detected via the top-level "benchmarks" key), matches metrics by
// name and reports per-metric relative deltas against a threshold. CI runs
// it warn-only against a checked-in baseline as a soft perf-regression gate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cbs::json {
class Value;
}

namespace cbs::obs {

struct DiffOptions {
    /// Relative-change threshold: |new - old| / max(|old|, eps) above this
    /// flags the row as a regression (for time-like metrics only increases
    /// regress; for throughput only decreases do).
    double threshold = 0.10;
    /// Report regressions but exit 0 (CI soft gate).
    bool warn_only = false;
    /// When non-empty, only metrics whose name contains this substring are
    /// compared — CI uses it to hard-gate a named row set (e.g. the
    /// resonant-loop benchmarks) while the full diff stays warn-only.
    std::string only;
    /// Benchmark-context guard override: a `library_build_type` mismatch
    /// between the two inputs (debug baseline vs release run, say) normally
    /// makes the whole comparison meaningless and fatal even under
    /// --warn-only; set this to compare anyway (mismatch still reported).
    bool allow_context_mismatch = false;
};

struct DiffRow {
    std::string name;    ///< metric id, e.g. "probe resonant.loop mean"
    double baseline = 0.0;
    double current = 0.0;
    double rel_delta = 0.0;  ///< (current - baseline) / max(|baseline|, eps)
    bool regression = false;  ///< beyond threshold in the harmful direction
    bool in_baseline = false;
    bool in_current = false;
    /// Present in exactly one input (never a regression, always reported).
    [[nodiscard]] bool missing() const { return in_baseline != in_current; }
};

struct DiffResult {
    std::vector<DiffRow> rows;
    std::size_t regressions = 0;  ///< rows with regression == true
    std::size_t missing = 0;      ///< rows present in only one input
    /// True when both inputs carry a benchmark `context.library_build_type`
    /// and they disagree: the numbers are not comparable. Fatal (exit 2)
    /// unless DiffOptions::allow_context_mismatch is set.
    bool context_mismatch = false;
    /// Human-readable context observations (build-type mismatch, differing
    /// num_cpus), prepended to render() output.
    std::vector<std::string> context_notes;

    /// Console table; regression rows are marked. Empty string when no
    /// comparable metrics were found at all.
    [[nodiscard]] std::string render(const DiffOptions& opts) const;
    /// Process exit code under `opts`: 0 clean / warn-only, 1 regressions,
    /// 2 non-overridden context mismatch (even under warn_only).
    [[nodiscard]] int exit_code(const DiffOptions& opts) const;
};

/// Compares two parsed documents, auto-detecting the format of each:
/// google-benchmark JSON (top-level "benchmarks" array: real_time regresses
/// up, items_per_second and bytes_per_second regress down) or RunReport
/// JSON (process/span mean_us & p99_us regress up; counters and probe
/// statistics are compared informationally and never count as regressions,
/// except probe `non_finite`, which regresses on any increase).
/// Throws cbs::json::ParseError on unrecognized structure.
[[nodiscard]] DiffResult diff_documents(const json::Value& baseline,
                                        const json::Value& current,
                                        const DiffOptions& opts);

/// parse_file + diff_documents. Throws cbs::json::ParseError — naming the
/// offending path — when a file is unreadable, empty, malformed, or parses
/// to something that is not a RunReport / google-benchmark export.
[[nodiscard]] DiffResult diff_files(const std::string& baseline_path,
                                    const std::string& current_path,
                                    const DiffOptions& opts);

}  // namespace cbs::obs
