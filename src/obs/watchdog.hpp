// Declarative online anomaly detectors attached to obs::Probe taps.
//
// A watchdog sees every sample the owning probe records and raises a
// structured obs::Event into the process-wide EventLog when its condition
// trips. Detectors are deliberately simple streaming state machines — the
// point is to catch a diverged filter, a dead noise source or a dropped
// oscillation *online*, during the run that produced it, instead of three
// layers later when a golden test fails.
//
// Built-ins:
//   RangeWatchdog    sample outside [lo, hi]               (fault)
//   StuckAtWatchdog  n consecutive bit-identical samples   (warning)
//   DriftWatchdog    fast EWMA departs from the long-run mean (warning)
//   LockLossWatchdog amplitude envelope collapses after lock (fault)
//
// Watchdogs run only while their probe is recording, so they obey the same
// zero-cost contract as every other obs feature. Each instance rate-limits
// itself (first kMaxRaises fires are logged; later fires only count) so a
// persistently-bad signal cannot flood the log.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "obs/events.hpp"

namespace cbs::obs {

class Probe;

class Watchdog {
public:
    virtual ~Watchdog() = default;

    /// Called for every recorded sample, in tap order.
    virtual void observe(std::uint64_t sample_index, double v) = 0;

    /// Detector kind id ("range", "stuck_at", ...), used for event records
    /// and for idempotent installation (Probe::add_watchdog deduplicates
    /// per (kind, probe)).
    [[nodiscard]] const std::string& kind() const { return kind_; }

    [[nodiscard]] std::uint64_t fire_count() const { return fires_; }
    /// True once the watchdog has fired at least once.
    [[nodiscard]] bool fired() const { return fires_ > 0; }

    /// Re-arms the detector state (new run on the same probe).
    virtual void reset() { fires_ = 0; }

protected:
    Watchdog(std::string kind, Severity severity) : kind_(std::move(kind)), severity_(severity) {}

    /// Raises an event (rate-limited) and notifies the owning probe so it
    /// can trigger a flight-recorder dump on fault-severity fires.
    void raise(std::uint64_t sample_index, double v, std::string message);

private:
    friend class Probe;
    static constexpr std::uint64_t kMaxRaises = 8;

    std::string kind_;
    Severity severity_;
    Probe* owner_ = nullptr;  ///< set by Probe::add_watchdog
    std::uint64_t fires_ = 0;
};

/// Fires when a sample leaves [lo, hi].
class RangeWatchdog final : public Watchdog {
public:
    RangeWatchdog(double lo, double hi, Severity severity = Severity::fault);
    void observe(std::uint64_t sample_index, double v) override;

private:
    double lo_;
    double hi_;
};

/// Fires when `threshold` consecutive samples are bit-identical (a dead
/// noise source, a latched ADC, a filter that stopped updating). Re-arms
/// as soon as the value changes.
class StuckAtWatchdog final : public Watchdog {
public:
    explicit StuckAtWatchdog(std::uint64_t threshold, Severity severity = Severity::warning);
    void observe(std::uint64_t sample_index, double v) override;
    void reset() override;

private:
    std::uint64_t threshold_;
    double last_ = 0.0;
    std::uint64_t run_ = 0;
    bool have_last_ = false;
    bool latched_ = false;  ///< fired for the current run; re-arms on change
};

/// Fires when the fast EWMA of the signal departs from its long-run mean by
/// more than `threshold` (absolute). The long-run mean is the running mean
/// of every sample seen; the EWMA tracks the recent `~1/alpha` samples, so
/// a slow state drift shows up as a growing gap long before a range bound
/// trips. Armed only after `warmup` samples.
class DriftWatchdog final : public Watchdog {
public:
    DriftWatchdog(double threshold, double alpha = 0.01, std::uint64_t warmup = 256,
                  Severity severity = Severity::warning);
    void observe(std::uint64_t sample_index, double v) override;
    void reset() override;

private:
    double threshold_;
    double alpha_;
    std::uint64_t warmup_;
    double ewma_ = 0.0;
    double mean_ = 0.0;
    std::uint64_t n_ = 0;
    bool latched_ = false;
};

/// Oscillator lock-loss: tracks the amplitude envelope (EWMA of |v|) and
/// the largest envelope seen after `warmup` samples. Once the envelope has
/// exceeded `lock_level`, a drop below `drop_fraction * peak` means the
/// loop lost its oscillation — a resonant sensor's worst silent failure.
class LockLossWatchdog final : public Watchdog {
public:
    LockLossWatchdog(double lock_level, double drop_fraction = 0.25,
                     double alpha = 0.005, std::uint64_t warmup = 512,
                     Severity severity = Severity::fault);
    void observe(std::uint64_t sample_index, double v) override;
    void reset() override;

    [[nodiscard]] double envelope() const { return envelope_; }
    [[nodiscard]] bool locked() const { return locked_; }

private:
    double lock_level_;
    double drop_fraction_;
    double alpha_;
    std::uint64_t warmup_;
    double envelope_ = 0.0;
    double peak_ = 0.0;
    std::uint64_t n_ = 0;
    bool locked_ = false;
    bool latched_ = false;
};

}  // namespace cbs::obs
