#include "obs/events.hpp"

#include <sstream>

#include "obs/metrics.hpp"

namespace cbs::obs {

std::string_view severity_name(Severity s) noexcept {
    switch (s) {
        case Severity::warning:
            return "warning";
        case Severity::fault:
            return "fault";
        case Severity::info:
            break;
    }
    return "info";
}

EventLog& EventLog::instance() {
    static EventLog log;
    return log;
}

namespace {

void bump_severity_counter(Severity s) {
    // The registry counter gives the run report its summary line. Counter::add
    // is gated on the obs level, so with CBS_OBS=off the log still holds the
    // event but the report stays silent (nothing prints reports then anyway).
    static Counter* counters[3] = {
        MetricsRegistry::instance().counter("obs.events.info"),
        MetricsRegistry::instance().counter("obs.events.warning"),
        MetricsRegistry::instance().counter("obs.events.fault"),
    };
    counters[static_cast<int>(s)]->add();
}

}  // namespace

void EventLog::append(Event e) {
    bump_severity_counter(e.severity);
    const std::lock_guard lock(mu_);
    events_.push_back(std::move(e));
}

void EventLog::append_all(std::vector<Event> events) {
    for (const auto& e : events) bump_severity_counter(e.severity);
    const std::lock_guard lock(mu_);
    events_.insert(events_.end(), std::make_move_iterator(events.begin()),
                   std::make_move_iterator(events.end()));
}

std::vector<Event> EventLog::events() const {
    const std::lock_guard lock(mu_);
    return events_;
}

std::size_t EventLog::size() const {
    const std::lock_guard lock(mu_);
    return events_.size();
}

std::size_t EventLog::count(Severity min) const {
    const std::lock_guard lock(mu_);
    std::size_t n = 0;
    for (const auto& e : events_) {
        if (e.severity >= min) ++n;
    }
    return n;
}

std::size_t EventLog::count_exact(Severity s) const {
    const std::lock_guard lock(mu_);
    std::size_t n = 0;
    for (const auto& e : events_) {
        if (e.severity == s) ++n;
    }
    return n;
}

std::size_t EventLog::count_for_prefix(std::string_view prefix, Severity min) const {
    const std::lock_guard lock(mu_);
    std::size_t n = 0;
    for (const auto& e : events_) {
        if (e.severity >= min && std::string_view(e.probe).starts_with(prefix)) ++n;
    }
    return n;
}

std::string EventLog::render(std::size_t max_lines) const {
    const auto evts = events();
    std::ostringstream out;
    const std::size_t shown = evts.size() < max_lines ? evts.size() : max_lines;
    for (std::size_t i = 0; i < shown; ++i) {
        const auto& e = evts[i];
        out << '[' << severity_name(e.severity) << "] " << e.kind << ' ' << e.probe << " @"
            << e.sample_index << " v=" << e.value;
        if (!e.message.empty()) out << "  " << e.message;
        out << '\n';
    }
    if (evts.size() > shown) {
        out << "... " << (evts.size() - shown) << " more\n";
    }
    return out.str();
}

void EventLog::clear() {
    const std::lock_guard lock(mu_);
    events_.clear();
}

}  // namespace cbs::obs
