// Per-scan records for array-style acquisitions: every completed sweep over
// a set of sensor sites (an array scan, see src/array) appends one record
// summarizing what was read. RunReport::collect() snapshots the log into
// its own "array scans" section, so a process that ran several scans shows
// one row per scan — site counts, reading moments and the common-mode level
// the reference columns removed — next to the usual counters and probes.
//
// The log is process-wide and thread-safe like the other obs registries;
// appending is cheap (one mutex + a struct copy) and scans are rare events
// (one per grid sweep), so there is no lock-free fast path.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace cbs::obs {

/// Summary of one completed array scan.
struct ScanRecord {
    std::string name;                 ///< scan label (ScanConfig::name)
    std::uint64_t rows = 0;
    std::uint64_t cols = 0;
    std::uint64_t sites = 0;          ///< rows * cols
    std::uint64_t functional = 0;     ///< sites with a live (released) device
    std::uint64_t reference_sites = 0;
    double mean_raw_v = 0.0;          ///< over functional sites
    double sigma_raw_v = 0.0;
    double mean_compensated_v = 0.0;  ///< after reference-column subtraction
    double sigma_compensated_v = 0.0;
    double reference_level_v = 0.0;   ///< mean row-reference (common-mode) level
};

class ScanLog {
public:
    static ScanLog& instance();

    void append(ScanRecord record);
    [[nodiscard]] std::vector<ScanRecord> snapshot() const;
    [[nodiscard]] std::size_t size() const;
    void clear();

private:
    mutable std::mutex mu_;
    std::vector<ScanRecord> records_;
};

}  // namespace cbs::obs
