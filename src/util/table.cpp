#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "util/expect.hpp"

namespace cbs {

ConsoleTable::ConsoleTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
    CBS_EXPECTS(!headers_.empty());
}

void ConsoleTable::add_row(std::vector<std::string> cells) {
    CBS_EXPECTS(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

std::string ConsoleTable::str(const std::string& title) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
    }
    std::ostringstream os;
    if (!title.empty()) os << "== " << title << " ==\n";
    auto emit = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << "  " << std::setw(static_cast<int>(widths[c])) << cells[c];
        }
        os << '\n';
    };
    emit(headers_);
    std::size_t total = 0;
    for (auto w : widths) total += w + 2;
    os << std::string(total, '-') << '\n';
    for (const auto& row : rows_) emit(row);
    return os.str();
}

std::string ConsoleTable::num(double v, int precision) {
    std::ostringstream os;
    os << std::setprecision(precision) << v;
    return os.str();
}

std::string ConsoleTable::si(double v, int precision, const std::string& unit) {
    static const struct {
        double scale;
        const char* prefix;
    } prefixes[] = {{1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "k"},  {1.0, ""},
                    {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"}, {1e-15, "f"}};
    std::ostringstream os;
    os << std::setprecision(precision);
    const double a = std::fabs(v);
    if (a == 0.0) {
        os << 0;
    } else {
        bool done = false;
        for (const auto& p : prefixes) {
            if (a >= p.scale) {
                os << v / p.scale << ' ' << p.prefix;
                done = true;
                break;
            }
        }
        if (!done) os << v << ' ';
    }
    os << unit;
    return os.str();
}

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : out_(path), columns_(header.size()) {
    CBS_EXPECTS(columns_ > 0);
    if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
    for (std::size_t i = 0; i < header.size(); ++i) {
        out_ << header[i];
        if (i + 1 < header.size()) out_ << ',';
    }
    out_ << '\n';
}

void CsvWriter::write_row(const std::vector<double>& values) {
    CBS_EXPECTS(values.size() == columns_);
    for (std::size_t i = 0; i < values.size(); ++i) {
        out_ << values[i];
        if (i + 1 < values.size()) out_ << ',';
    }
    out_ << '\n';
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
    CBS_EXPECTS(cells.size() == columns_);
    for (std::size_t i = 0; i < cells.size(); ++i) {
        out_ << cells[i];
        if (i + 1 < cells.size()) out_ << ',';
    }
    out_ << '\n';
}

}  // namespace cbs
