#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"

namespace cbs::stats {

double mean(std::span<const double> x) {
    CBS_EXPECTS(!x.empty());
    double s = 0.0;
    for (double v : x) s += v;
    return s / static_cast<double>(x.size());
}

double variance(std::span<const double> x) {
    if (x.size() < 2) return 0.0;
    const double m = mean(x);
    double s = 0.0;
    for (double v : x) s += (v - m) * (v - m);
    return s / static_cast<double>(x.size() - 1);
}

double stddev(std::span<const double> x) { return std::sqrt(variance(x)); }

double rms(std::span<const double> x) {
    CBS_EXPECTS(!x.empty());
    double s = 0.0;
    for (double v : x) s += v * v;
    return std::sqrt(s / static_cast<double>(x.size()));
}

double min(std::span<const double> x) {
    CBS_EXPECTS(!x.empty());
    return *std::min_element(x.begin(), x.end());
}

double max(std::span<const double> x) {
    CBS_EXPECTS(!x.empty());
    return *std::max_element(x.begin(), x.end());
}

double median(std::span<const double> x) { return percentile(x, 50.0); }

double percentile(std::span<const double> x, double p) {
    CBS_EXPECTS(!x.empty());
    CBS_EXPECTS(p >= 0.0 && p <= 100.0);
    std::vector<double> v(x.begin(), x.end());
    std::sort(v.begin(), v.end());
    if (v.size() == 1) return v.front();
    const double pos = p / 100.0 * static_cast<double>(v.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, v.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return v[lo] * (1.0 - frac) + v[hi] * frac;
}

LinearFit linear_fit(std::span<const double> x, std::span<const double> y) {
    CBS_EXPECTS(x.size() == y.size());
    CBS_EXPECTS(x.size() >= 2);
    const double n = static_cast<double>(x.size());
    const double mx = mean(x);
    const double my = mean(y);
    double sxx = 0.0;
    double sxy = 0.0;
    double syy = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        sxx += (x[i] - mx) * (x[i] - mx);
        sxy += (x[i] - mx) * (y[i] - my);
        syy += (y[i] - my) * (y[i] - my);
    }
    LinearFit fit;
    CBS_EXPECTS(sxx > 0.0);
    fit.slope = sxy / sxx;
    fit.intercept = my - fit.slope * mx;
    fit.r_squared = (syy > 0.0) ? (sxy * sxy) / (sxx * syy) : 1.0;
    (void)n;
    return fit;
}

void RunningStats::add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
}

void RunningStats::merge(const RunningStats& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const auto na = static_cast<double>(n_);
    const auto nb = static_cast<double>(other.n_);
    const double nt = na + nb;
    const double delta = other.mean_ - mean_;
    mean_ += delta * nb / nt;
    m2_ += other.m2_ + delta * delta * na * nb / nt;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    n_ += other.n_;
}

double RunningStats::variance() const noexcept {
    if (n_ < 2) return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

std::vector<std::size_t> histogram(std::span<const double> x, double lo, double hi,
                                   std::size_t bins) {
    CBS_EXPECTS(bins > 0);
    CBS_EXPECTS(hi > lo);
    std::vector<std::size_t> h(bins, 0);
    const double w = (hi - lo) / static_cast<double>(bins);
    for (double v : x) {
        auto idx = static_cast<std::ptrdiff_t>((v - lo) / w);
        idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(bins) - 1);
        ++h[static_cast<std::size_t>(idx)];
    }
    return h;
}

}  // namespace cbs::stats
