// Contract checking for the cbs library.
//
// CBS_EXPECTS(cond)  — precondition at a public API boundary.
// CBS_ENSURES(cond)  — postcondition / invariant re-established on exit.
//
// Violations throw cbs::ContractViolation carrying the failed expression and
// source location; they indicate a programming error in the caller (EXPECTS)
// or in the library (ENSURES), never a recoverable runtime condition.
#pragma once

#include <stdexcept>
#include <string>

namespace cbs {

/// Thrown when a CBS_EXPECTS / CBS_ENSURES contract is violated.
class ContractViolation : public std::logic_error {
public:
    explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] void contract_fail(const char* kind, const char* condition, const char* file,
                                int line);

}  // namespace cbs

#define CBS_EXPECTS(cond)                                                    \
    do {                                                                     \
        if (!(cond)) ::cbs::contract_fail("precondition", #cond, __FILE__, __LINE__); \
    } while (false)

#define CBS_ENSURES(cond)                                                    \
    do {                                                                     \
        if (!(cond)) ::cbs::contract_fail("postcondition", #cond, __FILE__, __LINE__); \
    } while (false)
