// Chebyshev-series surrogates: fit once at Chebyshev-Gauss nodes, evaluate
// millions of times.
//
// Two shapes cover the library's surrogate needs (DESIGN.md §14):
//   * ChebyshevSeries    — 1D interpolant of f on [a, b] (static-chain gain
//                          and responsivity vs. a process parameter),
//   * ChebyshevTensor3   — 3D tensor-product interpolant over a box (the
//                          Monte-Carlo resonance surrogate in z-space).
//
// Fitting samples f at the Chebyshev-Gauss nodes x_k = cos(pi (k+1/2) / n)
// and recovers coefficients by the discrete cosine transform, which is the
// discrete orthogonality projection — no linear solve, unconditionally
// stable. For analytic f the coefficients decay geometrically, so the
// magnitude of the trailing coefficients (`truncation_estimate`) is a
// usable a-posteriori error bound; callers that need a guarantee validate
// against full evaluations on an off-node grid (surrogate::FitReport).
//
// Evaluation contract: `eval` computes the tensor basis with an explicit
// std::fma recurrence and accumulates in a fixed coefficient order;
// `eval_many` dispatches to an AVX2+FMA kernel at runtime that performs the
// SAME operations per lane in the SAME order, so scalar and vector paths
// are bit-identical — results never depend on the CPU, batch grouping, or
// thread count. This is what lets the Monte-Carlo determinism contract
// (DESIGN.md §8) extend to the surrogate tier.
#pragma once

#include <array>
#include <cstddef>
#include <functional>
#include <vector>

namespace cbs::util {

/// 1D Chebyshev interpolant of degree n-1 on [lo, hi], fit at n
/// Chebyshev-Gauss nodes.
class ChebyshevSeries {
public:
    ChebyshevSeries() = default;

    /// Samples f at the n Chebyshev-Gauss nodes of [lo, hi] (n = degree+1)
    /// and projects onto the Chebyshev basis. Requires hi > lo, degree >= 0.
    static ChebyshevSeries fit(double lo, double hi, std::size_t degree,
                               const std::function<double(double)>& f);

    /// Builds from node values f(node(k, n, lo, hi)), k = 0..n-1 (callers
    /// that evaluate nodes in parallel feed the results back through this).
    static ChebyshevSeries fit_from_node_values(double lo, double hi,
                                                const std::vector<double>& values);

    /// The k-th Chebyshev-Gauss node of [lo, hi] for an n-point fit.
    [[nodiscard]] static double node(std::size_t k, std::size_t n, double lo, double hi);

    /// Clenshaw evaluation at x (x is clamped to [lo, hi]).
    [[nodiscard]] double eval(double x) const;

    /// Derivative at x via the Chebyshev derivative recurrence.
    [[nodiscard]] double derivative(double x) const;

    /// Magnitude of the trailing two coefficients — an a-posteriori
    /// truncation-error estimate for geometrically-decaying (analytic) f.
    [[nodiscard]] double truncation_estimate() const;

    [[nodiscard]] const std::vector<double>& coefficients() const { return c_; }
    [[nodiscard]] double lo() const { return lo_; }
    [[nodiscard]] double hi() const { return hi_; }
    [[nodiscard]] bool empty() const { return c_.empty(); }

private:
    std::vector<double> c_;  ///< c_[j] multiplies T_j(u(x))
    double lo_ = 0.0;
    double hi_ = 1.0;
    // Affine map x -> u in [-1, 1]: u = fma(x, scale, offset); precomputed
    // so eval and the SIMD kernels share the exact same two constants.
    double scale_ = 1.0;
    double offset_ = 0.0;
};

/// 3D tensor-product Chebyshev interpolant on a box.
class ChebyshevTensor3 {
public:
    struct Box {
        std::array<double, 3> lo{};
        std::array<double, 3> hi{};
        [[nodiscard]] bool contains(double x0, double x1, double x2) const {
            return x0 >= lo[0] && x0 <= hi[0] && x1 >= lo[1] && x1 <= hi[1] &&
                   x2 >= lo[2] && x2 <= hi[2];
        }
    };

    ChebyshevTensor3() = default;

    /// Fits degrees (d0, d1, d2) — (d0+1)(d1+1)(d2+1) nodes — sampling f at
    /// every tensor node serially.
    static ChebyshevTensor3 fit(const Box& box, const std::array<std::size_t, 3>& degree,
                                const std::function<double(double, double, double)>& f);

    /// Builds from pre-evaluated node values laid out with axis 2 fastest:
    /// values[(i*n1 + j)*n2 + k] = f(node0_i, node1_j, node2_k). Callers
    /// evaluate the (expensive) nodes in parallel and feed results here.
    static ChebyshevTensor3 fit_from_node_values(const Box& box,
                                                 const std::array<std::size_t, 3>& degree,
                                                 const std::vector<double>& values);

    /// Flattened tensor-node coordinates for a (d0, d1, d2) fit on `box`,
    /// in fit_from_node_values order; each entry is one (x0, x1, x2).
    static std::vector<std::array<double, 3>> nodes(const Box& box,
                                                    const std::array<std::size_t, 3>& degree);

    /// Scalar evaluation (basis recurrence and accumulation entirely in
    /// std::fma — the bit-reference for eval_many). Inputs outside the box
    /// are NOT clamped; callers gate with box().contains first.
    [[nodiscard]] double eval(double x0, double x1, double x2) const;

    /// Evaluates n points; out[i] = eval(x0[i], x1[i], x2[i]) bit-for-bit.
    /// Uses a 4-lane AVX2+FMA kernel when the CPU has it (runtime dispatch,
    /// same operation order per lane), the scalar path otherwise.
    void eval_many(const double* x0, const double* x1, const double* x2, double* out,
                   std::size_t n) const;

    /// Max over axes of the trailing-coefficient magnitude (see
    /// ChebyshevSeries::truncation_estimate).
    [[nodiscard]] double truncation_estimate() const;

    [[nodiscard]] const Box& box() const { return box_; }
    [[nodiscard]] const std::array<std::size_t, 3>& size() const { return n_; }
    [[nodiscard]] const std::vector<double>& coefficients() const { return c_; }
    [[nodiscard]] bool empty() const { return c_.empty(); }

private:
    std::vector<double> c_;  ///< c[(i*n1+j)*n2+k] multiplies T_i T_j T_k
    std::array<std::size_t, 3> n_{};  ///< nodes per axis (degree + 1)
    Box box_{};
    std::array<double, 3> scale_{};
    std::array<double, 3> offset_{};
};

}  // namespace cbs::util
