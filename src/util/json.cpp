#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace cbs::json {

namespace {

[[noreturn]] void fail(std::size_t pos, const std::string& what) {
    throw ParseError("json parse error at byte " + std::to_string(pos) + ": " + what);
}

}  // namespace

class Parser {
public:
    explicit Parser(std::string_view text) : text_(text) {}

    Value run() {
        Value v = parse_value();
        skip_ws();
        if (pos_ != text_.size()) fail(pos_, "trailing input");
        return v;
    }

private:
    void skip_ws() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
                text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char peek() {
        if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
        return text_[pos_];
    }

    void expect(char c) {
        if (peek() != c) fail(pos_, std::string("expected '") + c + "'");
        ++pos_;
    }

    bool consume_literal(std::string_view lit) {
        if (text_.substr(pos_, lit.size()) != lit) return false;
        pos_ += lit.size();
        return true;
    }

    Value parse_value() {
        skip_ws();
        switch (peek()) {
            case '{':
                return parse_object();
            case '[':
                return parse_array();
            case '"': {
                Value v;
                v.type_ = Value::Type::string;
                v.string_ = parse_string();
                return v;
            }
            case 't': {
                if (!consume_literal("true")) fail(pos_, "bad literal");
                Value v;
                v.type_ = Value::Type::boolean;
                v.bool_ = true;
                return v;
            }
            case 'f': {
                if (!consume_literal("false")) fail(pos_, "bad literal");
                Value v;
                v.type_ = Value::Type::boolean;
                v.bool_ = false;
                return v;
            }
            case 'n': {
                if (!consume_literal("null")) fail(pos_, "bad literal");
                return Value{};
            }
            default:
                return parse_number();
        }
    }

    Value parse_object() {
        expect('{');
        Value v;
        v.type_ = Value::Type::object;
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            skip_ws();
            std::string key = parse_string();
            skip_ws();
            expect(':');
            v.object_.emplace_back(std::move(key), parse_value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    Value parse_array() {
        expect('[');
        Value v;
        v.type_ = Value::Type::array;
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.array_.push_back(parse_value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        while (true) {
            const char c = peek();
            ++pos_;
            if (c == '"') return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            const char esc = peek();
            ++pos_;
            switch (esc) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    // Enough for our writers: parse the 4 hex digits and
                    // emit the code point as UTF-8 for the BMP (no
                    // surrogate-pair handling).
                    if (pos_ + 4 > text_.size()) fail(pos_, "truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
                        else fail(pos_ - 1, "bad \\u escape");
                    }
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xC0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (code >> 12));
                        out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    }
                    break;
                }
                default:
                    fail(pos_ - 1, "bad escape");
            }
        }
    }

    Value parse_number() {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
                text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
                text_[pos_] == '-' || text_[pos_] == '+')) {
            ++pos_;
        }
        if (pos_ == start) fail(pos_, "expected a value");
        const std::string_view token = text_.substr(start, pos_ - start);
        double parsed = 0.0;
        const auto [end, ec] = std::from_chars(token.data(), token.data() + token.size(), parsed);
        if (ec != std::errc{} || end != token.data() + token.size()) {
            fail(start, "bad number '" + std::string(token) + "'");
        }
        Value v;
        v.type_ = Value::Type::number;
        v.number_ = parsed;
        return v;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

Value Value::parse(std::string_view text) { return Parser(text).run(); }

Value Value::parse_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in.good()) throw ParseError("cannot read '" + path + "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    return parse(buf.str());
}

bool Value::as_bool() const {
    if (type_ != Type::boolean) throw ParseError("not a bool");
    return bool_;
}

double Value::as_number() const {
    if (type_ != Type::number) throw ParseError("not a number");
    return number_;
}

const std::string& Value::as_string() const {
    if (type_ != Type::string) throw ParseError("not a string");
    return string_;
}

std::size_t Value::size() const {
    if (type_ == Type::array) return array_.size();
    if (type_ == Type::object) return object_.size();
    throw ParseError("not a container");
}

const Value& Value::at(std::size_t i) const {
    if (type_ != Type::array) throw ParseError("not an array");
    if (i >= array_.size()) throw ParseError("array index out of range");
    return array_[i];
}

const Value* Value::find(std::string_view key) const {
    if (type_ != Type::object) throw ParseError("not an object");
    for (const auto& [k, v] : object_) {
        if (k == key) return &v;
    }
    return nullptr;
}

const Value& Value::at(std::string_view key) const {
    const Value* v = find(key);
    if (v == nullptr) throw ParseError("missing key '" + std::string(key) + "'");
    return *v;
}

const std::vector<std::pair<std::string, Value>>& Value::items() const {
    if (type_ != Type::object) throw ParseError("not an object");
    return object_;
}

std::string escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

}  // namespace cbs::json
