// Bracketing 1D solvers for resonance tracking: a Brent-style root-finder
// and a golden-section maximizer. Both are derivative-free, never leave the
// caller's bracket, and converge on any continuous function — which is what
// replaces "settle the time-domain loop and watch the counter" with "solve
// the steady-state model directly" (DESIGN.md §14).
#pragma once

#include <functional>

namespace cbs::util {

struct RootResult {
    double x = 0.0;       ///< abscissa of the root / maximum
    double f = 0.0;       ///< f(x)
    int iterations = 0;
    bool converged = false;
};

/// Finds x in [a, b] with f(x) = 0 by Brent's method (inverse quadratic
/// interpolation guarded by bisection). Requires f(a) and f(b) to have
/// opposite signs (a genuine bracket); converged == false otherwise.
/// Terminates when the bracket is narrower than xtol + 4 eps |x|.
RootResult find_root(const std::function<double(double)>& f, double a, double b,
                     double xtol = 1e-12, int max_iter = 128);

/// Finds the maximum of a unimodal f on [a, b] by golden-section search;
/// terminates when the bracket is narrower than xtol + 4 eps |x|.
RootResult maximize(const std::function<double(double)>& f, double a, double b,
                    double xtol = 1e-12, int max_iter = 256);

}  // namespace cbs::util
