// Descriptive statistics and least-squares helpers used by the measurement
// and benchmarking layers.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace cbs::stats {

double mean(std::span<const double> x);
/// Unbiased sample variance (N-1 denominator); 0 for fewer than 2 samples.
double variance(std::span<const double> x);
double stddev(std::span<const double> x);
double rms(std::span<const double> x);
double min(std::span<const double> x);
double max(std::span<const double> x);
/// Median (copies and selects).
double median(std::span<const double> x);
/// Linear-interpolated percentile, p in [0,100].
double percentile(std::span<const double> x, double p);

/// Ordinary least squares y = slope*x + intercept.
struct LinearFit {
    double slope = 0.0;
    double intercept = 0.0;
    double r_squared = 0.0;
};
LinearFit linear_fit(std::span<const double> x, std::span<const double> y);

/// Equal-width histogram over [lo, hi]; values outside are clamped to the
/// edge bins.
std::vector<std::size_t> histogram(std::span<const double> x, double lo, double hi,
                                   std::size_t bins);

}  // namespace cbs::stats
