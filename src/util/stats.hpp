// Descriptive statistics and least-squares helpers used by the measurement
// and benchmarking layers.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace cbs::stats {

double mean(std::span<const double> x);
/// Unbiased sample variance (N-1 denominator); 0 for fewer than 2 samples.
double variance(std::span<const double> x);
double stddev(std::span<const double> x);
double rms(std::span<const double> x);
double min(std::span<const double> x);
double max(std::span<const double> x);
/// Median (copies and selects).
double median(std::span<const double> x);
/// Linear-interpolated percentile, p in [0,100].
double percentile(std::span<const double> x, double p);

/// Ordinary least squares y = slope*x + intercept.
struct LinearFit {
    double slope = 0.0;
    double intercept = 0.0;
    double r_squared = 0.0;
};
LinearFit linear_fit(std::span<const double> x, std::span<const double> y);

/// Equal-width histogram over [lo, hi]; values outside are clamped to the
/// edge bins.
std::vector<std::size_t> histogram(std::span<const double> x, double lo, double hi,
                                   std::size_t bins);

/// Streaming mean/variance accumulator (Welford's recurrence) with an exact
/// shard merge (Chan et al. pairwise combination). Stable where the naive
/// sum-of-squares form catastrophically cancels (high mean, low variance),
/// and the building block of deterministic parallel reduction: accumulate
/// per shard, then merge shards in a fixed order — the result is then
/// bit-identical for any thread count.
class RunningStats {
public:
    void add(double x) noexcept;
    /// Folds another accumulator into this one. Merge order matters at the
    /// bit level (floating point is non-associative), so parallel callers
    /// must merge shards in a fixed (index) order.
    void merge(const RunningStats& other) noexcept;

    [[nodiscard]] std::size_t count() const noexcept { return n_; }
    [[nodiscard]] double mean() const noexcept { return mean_; }
    /// Unbiased sample variance (N-1 denominator); 0 for fewer than 2.
    [[nodiscard]] double variance() const noexcept;
    [[nodiscard]] double stddev() const noexcept;
    [[nodiscard]] double min() const noexcept { return min_; }  ///< 0 when empty
    [[nodiscard]] double max() const noexcept { return max_; }  ///< 0 when empty

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

}  // namespace cbs::stats
