// Minimal JSON: a recursive-descent parser into a small Value tree, plus an
// escape helper for writers. Exists so cbs-obs-diff can read RunReport and
// google-benchmark JSON exports without an external dependency; it covers
// the JSON those writers emit (objects, arrays, strings with basic escapes,
// numbers, bools, null) and rejects everything else loudly.
#pragma once

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cbs::json {

/// Malformed input. what() includes the byte offset.
class ParseError : public std::runtime_error {
public:
    explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

class Value {
public:
    enum class Type { null, boolean, number, string, array, object };

    Value() = default;

    /// Parses a complete JSON document (trailing non-space input is an
    /// error). Throws ParseError on malformed input.
    [[nodiscard]] static Value parse(std::string_view text);
    /// Parses the file at `path`; throws ParseError (unreadable counts).
    [[nodiscard]] static Value parse_file(const std::string& path);

    [[nodiscard]] Type type() const { return type_; }
    [[nodiscard]] bool is_null() const { return type_ == Type::null; }
    [[nodiscard]] bool is_bool() const { return type_ == Type::boolean; }
    [[nodiscard]] bool is_number() const { return type_ == Type::number; }
    [[nodiscard]] bool is_string() const { return type_ == Type::string; }
    [[nodiscard]] bool is_array() const { return type_ == Type::array; }
    [[nodiscard]] bool is_object() const { return type_ == Type::object; }

    /// Typed accessors; throw ParseError on a type mismatch.
    [[nodiscard]] bool as_bool() const;
    [[nodiscard]] double as_number() const;
    [[nodiscard]] const std::string& as_string() const;

    /// Array access.
    [[nodiscard]] std::size_t size() const;
    [[nodiscard]] const Value& at(std::size_t i) const;

    /// Object access: find returns nullptr when the key is absent; at
    /// throws. Key order is preserved from the document.
    [[nodiscard]] const Value* find(std::string_view key) const;
    [[nodiscard]] const Value& at(std::string_view key) const;
    [[nodiscard]] const std::vector<std::pair<std::string, Value>>& items() const;

private:
    Type type_ = Type::null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<Value> array_;
    std::vector<std::pair<std::string, Value>> object_;

    friend class Parser;
};

/// Escapes a string for embedding inside JSON quotes (", \, control chars).
[[nodiscard]] std::string escape(std::string_view s);

}  // namespace cbs::json
