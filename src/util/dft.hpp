// Radix-2 FFT and Welch power-spectral-density estimation, used to verify
// noise-shaping claims of the readout chain (chopper, filters, 1/f).
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace cbs {

/// In-place iterative radix-2 decimation-in-time FFT. `x.size()` must be a
/// power of two. `inverse` applies the conjugate transform scaled by 1/N.
void fft(std::vector<std::complex<double>>& x, bool inverse = false);

/// One-sided PSD estimate.
struct Psd {
    std::vector<double> frequency;  ///< Hz, length nfft/2+1
    std::vector<double> power;      ///< units^2/Hz
};

/// Welch PSD with Hann window and 50% overlap. `nfft` must be a power of two
/// and <= x.size(). Densities are one-sided (integrate over f >= 0 to get the
/// total variance).
Psd welch_psd(std::span<const double> x, double sample_rate_hz, std::size_t nfft);

/// Integrates a one-sided PSD between two frequencies (trapezoidal), giving
/// band-limited variance.
double band_power(const Psd& psd, double f_lo, double f_hi);

}  // namespace cbs
