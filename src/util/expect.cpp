#include "util/expect.hpp"

#include <sstream>

namespace cbs {

void contract_fail(const char* kind, const char* condition, const char* file, int line) {
    std::ostringstream os;
    os << kind << " failed: " << condition << " at " << file << ':' << line;
    throw ContractViolation(os.str());
}

}  // namespace cbs
