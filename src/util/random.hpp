// Deterministic, explicitly-seeded random number generation.
//
// Every stochastic component of the library takes an Rng (or a seed) so that
// simulations, tests and benches are bit-reproducible run to run.
#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <random>
#include <span>

namespace cbs {

namespace detail {

/// SplitMix64 finalizer: a bijective avalanche mix, used to turn structured
/// inputs (root seed + stream index) into decorrelated generator seeds.
constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/// Exactly-rounded [0, 1) canonical from one 64-bit engine word: the value
/// of `double(u) * 2^-64` computed branch-free from the two 32-bit halves.
/// Scaling by a power of two is exact, so
/// `double(hi)*2^-32 + double(lo)*2^-64` rounds identically to the direct
/// conversion — and matches what libstdc++'s generate_canonical produces
/// for mt19937_64, including the `>= 1.0 -> nextafter(1, 0)` correction.
inline double canonical_u64(std::uint64_t u) noexcept {
    const double hi = static_cast<double>(static_cast<std::uint32_t>(u >> 32));
    const double lo = static_cast<double>(static_cast<std::uint32_t>(u));
    double r = hi * 0x1p-32 + lo * 0x1p-64;
    if (r >= 1.0) r = 0x1.fffffffffffffp-1;
    return r;
}

/// One raw (unit) normal variate by the Marsaglia polar method, drawing
/// engine words the way a freshly constructed std::normal_distribution
/// does in libstdc++ (every call generates a full rejection-sampled pair
/// and returns `y * mult`; the cached partner is discarded, which is
/// exactly what `Rng::normal`'s construct-per-call pattern produces).
template <typename Engine>
inline double raw_normal_polar(Engine& engine) {
    double x, y, r2;
    do {
        x = 2.0 * canonical_u64(engine()) - 1.0;
        y = 2.0 * canonical_u64(engine()) - 1.0;
        r2 = x * x + y * y;
    } while (r2 > 1.0 || r2 == 0.0);
    const double mult = std::sqrt(-2.0 * std::log(r2) / r2);
    return y * mult;
}

/// Startup self-check for the fast normal path: true when raw_normal_polar
/// reproduces this standard library's std::normal_distribution bit for bit
/// (the distribution's algorithm is implementation-defined, so a non-GNU
/// standard library falls back to the portable per-draw path).
inline bool fast_normal_matches_std() {
    static const bool ok = [] {
        std::mt19937_64 a(0x5eedfa57ULL);
        std::mt19937_64 b = a;
        for (int i = 0; i < 4096; ++i) {
            const double fast = raw_normal_polar(a);
            const double ref = std::normal_distribution<double>(0.0, 1.0)(b);
            if (fast != ref) return false;
        }
        return true;
    }();
    return ok;
}

/// Exact inverse of the mt19937_64 tempering transform (a bijection on
/// 64-bit words): recovers the raw state word from a tempered output. The
/// shift-XOR steps with shift >= 32 invert in one application; the narrower
/// ones invert by fixed-point iteration (each pass recovers 17 resp. 29
/// more correct low/high bits, so 3 resp. 2 passes suffice).
inline std::uint64_t untemper_mt64(std::uint64_t y) noexcept {
    y ^= y >> 43;
    y ^= (y << 37) & 0xFFF7EEE000000000ULL;
    std::uint64_t x = y;
    for (int i = 0; i < 3; ++i) x = y ^ ((x << 17) & 0x71D67FFFEDA60000ULL);
    y = x;
    x = y;
    for (int i = 0; i < 2; ++i) x = y ^ ((x >> 29) & 0x5555555555555555ULL);
    return x;
}

/// Word-identical replica of std::mt19937_64 that twists and tempers its
/// state one whole 312-word block at a time instead of per call. The
/// algorithm (MT19937-64) is fully specified by the standard, so the output
/// sequence is guaranteed identical for any seed; regenerating in blocks
/// lets the twist run branch-free (`-(x & 1) & A` instead of a data-
/// dependent branch) and the temper pipeline across words, which is ~3.5x
/// faster per word than the standard library's lazy per-call path. This is
/// the engine behind the batched signal path's bulk noise draws.
class BulkMt19937_64 {
public:
    using result_type = std::uint64_t;
    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }

    explicit BulkMt19937_64(result_type seed = std::mt19937_64::default_seed) {
        state_[0] = seed;
        for (std::size_t i = 1; i < kN; ++i) {
            state_[i] = 6364136223846793005ULL * (state_[i - 1] ^ (state_[i - 1] >> 62)) + i;
        }
        pos_ = kN;
    }

    /// Adopt the stream of a running std::mt19937_64 at its current
    /// position: draws the engine's next 312 outputs, inverts the (bijective)
    /// tempering to recover the raw state window, and continues the exact
    /// word sequence from there. The consumed words are served back first,
    /// so no output is lost — `import` is stream-transparent at any offset.
    static BulkMt19937_64 import(std::mt19937_64& engine) {
        BulkMt19937_64 m;
        for (std::size_t i = 0; i < kN; ++i) {
            m.out_[i] = engine();
            m.state_[i] = untemper_mt64(m.out_[i]);
        }
        m.pos_ = 0;
        return m;
    }

    result_type operator()() {
        if (pos_ == kN) refill();
        return out_[pos_++];
    }

    /// Contiguous view of the words remaining in the current regenerated
    /// block (refills first when the block is spent). SIMD consumers read
    /// words in bulk through this window and commit consumption with
    /// advance(), which keeps the stream position word-exact — the whole
    /// point of the fused fill paths is that they consume the identical
    /// word sequence the per-call interface would.
    std::span<const result_type> peek_block() {
        if (pos_ == kN) refill();
        return {out_.data() + pos_, kN - pos_};
    }

    /// Consumes k words previously observed through peek_block().
    void advance(std::size_t k) noexcept { pos_ += std::min(k, kN - pos_); }

private:
    static constexpr std::size_t kN = 312;
    static constexpr std::size_t kM = 156;
    static constexpr std::uint64_t kMatrixA = 0xB5026F5AA96619E9ULL;
    static constexpr std::uint64_t kUpper = 0xFFFFFFFF80000000ULL;
    static constexpr std::uint64_t kLower = 0x7FFFFFFFULL;

    void refill() noexcept {
        std::uint64_t* mt = state_.data();
        for (std::size_t i = 0; i < kN - kM; ++i) {
            const std::uint64_t x = (mt[i] & kUpper) | (mt[i + 1] & kLower);
            mt[i] = mt[i + kM] ^ (x >> 1) ^ (-(x & 1ULL) & kMatrixA);
        }
        for (std::size_t i = kN - kM; i < kN - 1; ++i) {
            const std::uint64_t x = (mt[i] & kUpper) | (mt[i + 1] & kLower);
            mt[i] = mt[i + kM - kN] ^ (x >> 1) ^ (-(x & 1ULL) & kMatrixA);
        }
        const std::uint64_t x = (mt[kN - 1] & kUpper) | (mt[0] & kLower);
        mt[kN - 1] = mt[kM - 1] ^ (x >> 1) ^ (-(x & 1ULL) & kMatrixA);
        for (std::size_t i = 0; i < kN; ++i) {
            std::uint64_t y = mt[i];
            y ^= (y >> 29) & 0x5555555555555555ULL;
            y ^= (y << 17) & 0x71D67FFFEDA60000ULL;
            y ^= (y << 37) & 0xFFF7EEE000000000ULL;
            y ^= y >> 43;
            out_[i] = y;
        }
        pos_ = 0;
    }

    std::array<std::uint64_t, kN> state_{};
    std::array<std::uint64_t, kN> out_{};
    std::size_t pos_ = kN;
};

}  // namespace detail

/// Seeded pseudo-random generator with the distributions the library needs.
class Rng {
public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : engine_(seed) {}

    /// Deterministic per-task stream: the returned generator is a pure
    /// function of (root_seed, stream) — independent of which thread runs
    /// the task, in what order, or what was drawn before. This is the
    /// determinism contract of the exec layer: Monte-Carlo trial i and
    /// array element i always see the same stream for a given root seed.
    /// Two mix64 rounds decorrelate adjacent indices and adjacent roots.
    static Rng for_stream(std::uint64_t root_seed, std::uint64_t stream) {
        const std::uint64_t z =
            detail::mix64(root_seed + 0x9e3779b97f4a7c15ULL * (stream + 1));
        return Rng(detail::mix64(z ^ 0xd1b54a32d192ed03ULL));
    }

    /// Uniform double in [lo, hi).
    double uniform(double lo = 0.0, double hi = 1.0) {
        return draw(std::uniform_real_distribution<double>(lo, hi));
    }

    /// Gaussian with the given mean and standard deviation.
    double normal(double mean = 0.0, double sigma = 1.0) {
        return draw(std::normal_distribution<double>(mean, sigma));
    }

    /// Bulk raw (unit) normal variates: consumes the engine exactly as the
    /// same number of `normal()` calls would, and `out[i] * sigma + mean`
    /// reproduces the i-th `normal(mean, sigma)` result bit for bit (the
    /// scale-and-shift is the distribution's own final operation). This is
    /// the batched signal path's draw source: the first fill migrates the
    /// generator one-way onto the block-regenerating MT19937-64 replica
    /// (word-identical stream, adopted mid-sequence by inverting the
    /// tempering), and draws then flow through the branch-free canonical
    /// converter — together ~2x faster per draw than per-call distribution
    /// construction over the standard engine, without perturbing any seeded
    /// sequence. Falls back to per-draw std::normal_distribution on
    /// standard libraries whose algorithm the fast path cannot replicate.
    void fill_raw_normal(std::span<double> out) {
        ensure_bulk_mode();
        if (!bulk_mode_) {
            for (double& d : out) d = std::normal_distribution<double>(0.0, 1.0)(engine_);
            return;
        }
        for (double& d : out) d = detail::raw_normal_polar(bulk_engine_);
    }

    /// Bulk raw unit normals on the reassociated fast path (the CBS_FUSE
    /// SIMD tier): consumes the engine word-for-word like fill_raw_normal —
    /// the polar method's candidate generation and rejection decisions are
    /// replicated operation for operation, so seeded sequences and stream
    /// positions are untouched — but the accepted pairs' log/sqrt transform
    /// runs through a vectorized polynomial evaluator, so values may differ
    /// from the exact fill in the last bits (|rel err| < 1e-12 per draw;
    /// contract in DESIGN.md §11). Values are a pure function of the
    /// consumed words, independent of how a sequence of fills is split into
    /// calls. Falls back to the exact fill when the CPU lacks AVX2+FMA or
    /// the fast polar path cannot replicate this standard library.
    void fill_raw_normal_fast(std::span<double> out);

    /// One-way switch onto the block-regenerating fast engine (no-op when
    /// already switched, or when the standard library's normal_distribution
    /// algorithm is one the fast path cannot replicate). The word stream is
    /// adopted mid-sequence, so every subsequent draw — scalar or bulk — is
    /// bit-identical to what the standard engine would have produced; only
    /// the words arrive ~3.5x faster. fill_raw_normal switches on first use;
    /// callers that mix scalar draws with bulk fills may also switch
    /// explicitly so the cheap draws benefit too.
    void ensure_bulk_mode() {
        if (!bulk_mode_ && detail::fast_normal_matches_std()) {
            bulk_engine_ = detail::BulkMt19937_64::import(engine_);
            bulk_mode_ = true;
        }
    }

    /// Log-normal parameterized by the mean and relative sigma of the
    /// *underlying value* (not of its logarithm); handy for process spreads.
    double lognormal_rel(double mean, double rel_sigma) {
        const double cv2 = rel_sigma * rel_sigma;
        const double s2 = std::log1p(cv2);
        const double mu = std::log(mean) - 0.5 * s2;
        return draw(std::lognormal_distribution<double>(mu, std::sqrt(s2)));
    }

    /// Poisson-distributed count.
    std::uint64_t poisson(double mean) {
        return draw(std::poisson_distribution<std::uint64_t>(mean));
    }

    /// Bernoulli trial.
    bool bernoulli(double p) { return draw(std::bernoulli_distribution(p)); }

    /// Uniform integer in [0, n).
    std::uint64_t integer(std::uint64_t n) {
        return draw(std::uniform_int_distribution<std::uint64_t>(0, n - 1));
    }

    /// Exponentially distributed waiting time with the given rate.
    double exponential(double rate) {
        return draw(std::exponential_distribution<double>(rate));
    }

    /// Derive an independent child generator (for per-component streams).
    Rng fork() { return Rng(raw_word()); }

    /// One raw 64-bit engine word (the URBG output the distributions see).
    std::uint64_t raw_word() { return bulk_mode_ ? bulk_engine_() : engine_(); }

private:
    /// Both engines produce the same word stream (the bulk replica adopts
    /// the standard engine's exact position on migration), and every
    /// std::*_distribution consumes words only through the URBG interface
    /// with identical min/max — so dispatching a distribution to whichever
    /// engine is live yields bit-identical values either way. Scalar-only
    /// generators never migrate and keep the standard engine's code path.
    template <typename Dist>
    typename Dist::result_type draw(Dist dist) {
        return bulk_mode_ ? dist(bulk_engine_) : dist(engine_);
    }

    std::mt19937_64 engine_;
    detail::BulkMt19937_64 bulk_engine_;
    bool bulk_mode_ = false;
};

}  // namespace cbs
