// Deterministic, explicitly-seeded random number generation.
//
// Every stochastic component of the library takes an Rng (or a seed) so that
// simulations, tests and benches are bit-reproducible run to run.
#pragma once

#include <cstdint>
#include <random>

namespace cbs {

namespace detail {

/// SplitMix64 finalizer: a bijective avalanche mix, used to turn structured
/// inputs (root seed + stream index) into decorrelated generator seeds.
constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

}  // namespace detail

/// Seeded pseudo-random generator with the distributions the library needs.
class Rng {
public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : engine_(seed) {}

    /// Deterministic per-task stream: the returned generator is a pure
    /// function of (root_seed, stream) — independent of which thread runs
    /// the task, in what order, or what was drawn before. This is the
    /// determinism contract of the exec layer: Monte-Carlo trial i and
    /// array element i always see the same stream for a given root seed.
    /// Two mix64 rounds decorrelate adjacent indices and adjacent roots.
    static Rng for_stream(std::uint64_t root_seed, std::uint64_t stream) {
        const std::uint64_t z =
            detail::mix64(root_seed + 0x9e3779b97f4a7c15ULL * (stream + 1));
        return Rng(detail::mix64(z ^ 0xd1b54a32d192ed03ULL));
    }

    /// Uniform double in [lo, hi).
    double uniform(double lo = 0.0, double hi = 1.0) {
        return std::uniform_real_distribution<double>(lo, hi)(engine_);
    }

    /// Gaussian with the given mean and standard deviation.
    double normal(double mean = 0.0, double sigma = 1.0) {
        return std::normal_distribution<double>(mean, sigma)(engine_);
    }

    /// Log-normal parameterized by the mean and relative sigma of the
    /// *underlying value* (not of its logarithm); handy for process spreads.
    double lognormal_rel(double mean, double rel_sigma) {
        const double cv2 = rel_sigma * rel_sigma;
        const double s2 = std::log1p(cv2);
        const double mu = std::log(mean) - 0.5 * s2;
        return std::lognormal_distribution<double>(mu, std::sqrt(s2))(engine_);
    }

    /// Poisson-distributed count.
    std::uint64_t poisson(double mean) {
        return std::poisson_distribution<std::uint64_t>(mean)(engine_);
    }

    /// Bernoulli trial.
    bool bernoulli(double p) { return std::bernoulli_distribution(p)(engine_); }

    /// Uniform integer in [0, n).
    std::uint64_t integer(std::uint64_t n) {
        return std::uniform_int_distribution<std::uint64_t>(0, n - 1)(engine_);
    }

    /// Exponentially distributed waiting time with the given rate.
    double exponential(double rate) {
        return std::exponential_distribution<double>(rate)(engine_);
    }

    /// Derive an independent child generator (for per-component streams).
    Rng fork() { return Rng(engine_()); }

    std::mt19937_64& engine() { return engine_; }

private:
    std::mt19937_64 engine_;
};

}  // namespace cbs
