#include "util/allan.hpp"

#include <cmath>

#include "util/expect.hpp"

namespace cbs {

std::vector<AllanPoint> allan_deviation(std::span<const double> y, double tau0,
                                        std::size_t min_pairs) {
    CBS_EXPECTS(tau0 > 0.0);
    CBS_EXPECTS(min_pairs >= 1);
    std::vector<AllanPoint> out;
    if (y.size() < 2 * min_pairs) return out;

    for (std::size_t m = 1; 2 * m + min_pairs <= y.size(); m *= 2) {
        // Overlapping estimator: averages of m consecutive samples starting
        // at every index, differenced at lag m.
        const std::size_t n = y.size();
        std::vector<double> prefix(n + 1, 0.0);
        for (std::size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + y[i];
        auto block_mean = [&](std::size_t start) {
            return (prefix[start + m] - prefix[start]) / static_cast<double>(m);
        };
        double acc = 0.0;
        std::size_t pairs = 0;
        for (std::size_t i = 0; i + 2 * m <= n; ++i) {
            const double d = block_mean(i + m) - block_mean(i);
            acc += d * d;
            ++pairs;
        }
        if (pairs < min_pairs) break;
        AllanPoint p;
        p.tau = static_cast<double>(m) * tau0;
        p.adev = std::sqrt(acc / (2.0 * static_cast<double>(pairs)));
        p.pairs = pairs;
        out.push_back(p);
    }
    return out;
}

}  // namespace cbs
