#include "util/allan.hpp"

#include <cmath>

#include "util/expect.hpp"

namespace cbs {

std::vector<AllanPoint> allan_deviation(std::span<const double> y, double tau0,
                                        std::size_t min_pairs) {
    CBS_EXPECTS(tau0 > 0.0);
    CBS_EXPECTS(min_pairs >= 1);
    std::vector<AllanPoint> out;
    if (y.size() < 2 * min_pairs) return out;

    for (std::size_t m = 1; 2 * m + min_pairs <= y.size(); m *= 2) {
        // Overlapping estimator: averages of m consecutive samples starting
        // at every index, differenced at lag m.
        const std::size_t n = y.size();
        std::vector<double> prefix(n + 1, 0.0);
        for (std::size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + y[i];
        auto block_mean = [&](std::size_t start) {
            return (prefix[start + m] - prefix[start]) / static_cast<double>(m);
        };
        double acc = 0.0;
        std::size_t pairs = 0;
        for (std::size_t i = 0; i + 2 * m <= n; ++i) {
            const double d = block_mean(i + m) - block_mean(i);
            acc += d * d;
            ++pairs;
        }
        if (pairs < min_pairs) break;
        AllanPoint p;
        p.tau = static_cast<double>(m) * tau0;
        p.adev = std::sqrt(acc / (2.0 * static_cast<double>(pairs)));
        p.pairs = pairs;
        out.push_back(p);
    }
    return out;
}

StreamingAllan::StreamingAllan(double tau0, std::size_t max_levels, std::size_t min_pairs)
    : tau0_(tau0), min_pairs_(min_pairs) {
    CBS_EXPECTS(tau0 > 0.0);
    CBS_EXPECTS(max_levels >= 1 && max_levels <= 24);
    CBS_EXPECTS(min_pairs >= 1);
    levels_.reserve(max_levels);
    std::size_t m = 1;
    for (std::size_t k = 0; k < max_levels; ++k, m *= 2) levels_.push_back({m, 0.0, 0});
    // Prefix ring: computing the pair starting at i for the deepest level
    // needs S[i], S[i+m], S[i+2m] with i = n - 2m, so the last 2*m_max + 1
    // prefix values are always enough.
    ring_.assign(2 * levels_.back().m + 1, 0.0);  // ring_[0] = S[0] = 0
}

void StreamingAllan::add(double y) noexcept {
    // Identical accumulation order to the batch estimator's prefix array:
    // S[n] = S[n-1] + y[n-1], left to right from zero.
    prefix_ += y;
    ++n_;
    const std::size_t rs = ring_.size();
    ring_[n_ % rs] = prefix_;
    for (Level& lvl : levels_) {
        const std::size_t m = lvl.m;
        if (n_ < 2 * m) continue;
        // Pair starting at i = n - 2m is complete exactly now. Replaying
        // block_mean(i + m) - block_mean(i) with the batch call's operation
        // order keeps the ladder bit-identical to allan_deviation().
        const std::size_t i = n_ - 2 * m;
        const double s0 = ring_[i % rs];
        const double s1 = ring_[(i + m) % rs];
        const double s2 = ring_[(i + 2 * m) % rs];
        const double d = (s2 - s1) / static_cast<double>(m) -
                         (s1 - s0) / static_cast<double>(m);
        lvl.acc += d * d;
        ++lvl.pairs;
    }
}

std::vector<AllanPoint> StreamingAllan::ladder() const {
    std::vector<AllanPoint> out;
    for (const Level& lvl : levels_) {
        // Same sweep cut-off as the batch loop condition
        // (2m + min_pairs <= n), so both report exactly the same levels.
        if (2 * lvl.m + min_pairs_ > n_) break;
        AllanPoint p;
        p.tau = static_cast<double>(lvl.m) * tau0_;
        p.adev = std::sqrt(lvl.acc / (2.0 * static_cast<double>(lvl.pairs)));
        p.pairs = lvl.pairs;
        out.push_back(p);
    }
    return out;
}

double StreamingAllan::floor_adev() const {
    double best = 0.0;
    bool have = false;
    for (const AllanPoint& p : ladder()) {
        if (!have || p.adev < best) {
            best = p.adev;
            have = true;
        }
    }
    return best;
}

void StreamingAllan::reset() noexcept {
    for (Level& lvl : levels_) {
        lvl.acc = 0.0;
        lvl.pairs = 0;
    }
    std::fill(ring_.begin(), ring_.end(), 0.0);
    prefix_ = 0.0;
    n_ = 0;
}

}  // namespace cbs
