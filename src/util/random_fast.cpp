// Vectorized bulk normal fill (the CBS_FUSE SIMD tier of Rng).
//
// The Marsaglia polar method is two independent phases: (1) generate
// candidate pairs (x, y) in the unit square and reject those outside the
// unit disc — pure engine-word consumption plus exactly-rounded arithmetic;
// (2) transform each accepted pair by mult = sqrt(-2 log r2 / r2). Phase 1
// is replicated here operation for operation with AVX2 (the products and
// sums round identically to the scalar path, so every rejection decision —
// and therefore the engine word stream — is bit-identical to
// fill_raw_normal). Phase 2 is where the speed comes from: a vectorized
// polynomial log replaces libm, trading the last ~2 bits of each draw
// (|rel err| < 1e-12) for ~2.3x fewer cycles per draw. Every accepted pair
// goes through the same polynomial evaluator — including tail pairs, padded
// to a full vector — so a draw's value is a pure function of its engine
// words, independent of how fills are batched.
#include "util/random.hpp"

#include <bit>

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define CBS_RANDOM_FAST_X86 1
#endif

namespace cbs {

namespace {

#if defined(CBS_RANDOM_FAST_X86)

bool cpu_has_avx2_fma() {
    static const bool ok =
        __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
    return ok;
}

// double(u32) for four 32-bit values held in 64-bit lanes, via the
// exponent-offset trick: (2^52 | u) as a double is 2^52 + u exactly
// (u < 2^32), so subtracting 2^52 yields the exact conversion.
__attribute__((target("avx2,fma"))) inline __m256d u32_to_pd(__m256i u) {
    const __m256i magic_i = _mm256_set1_epi64x(0x4330000000000000LL);
    const __m256d magic_d = _mm256_set1_pd(0x1p52);
    return _mm256_sub_pd(_mm256_castsi256_pd(_mm256_or_si256(u, magic_i)), magic_d);
}

// Four lanes of detail::canonical_u64, bit-identical per lane: both
// products scale by powers of two (exact), the single add rounds once,
// and the >= 1.0 correction is the same branchless clamp.
__attribute__((target("avx2,fma"))) inline __m256d canonical4(__m256i w) {
    const __m256d hi = u32_to_pd(_mm256_srli_epi64(w, 32));
    const __m256d lo = u32_to_pd(_mm256_and_si256(w, _mm256_set1_epi64x(0xFFFFFFFFLL)));
    const __m256d r = _mm256_add_pd(_mm256_mul_pd(hi, _mm256_set1_pd(0x1p-32)),
                                    _mm256_mul_pd(lo, _mm256_set1_pd(0x1p-64)));
    const __m256d ge1 = _mm256_cmp_pd(r, _mm256_set1_pd(1.0), _CMP_GE_OQ);
    return _mm256_blendv_pd(r, _mm256_set1_pd(0x1.fffffffffffffp-1), ge1);
}

// log(x) for x in (0, 1]: split x = m * 2^e with m folded into
// [sqrt(1/2), sqrt(2)), then log m = 2 atanh(s) with s = (m-1)/(m+1)
// evaluated as an odd polynomial in s^2 (7 terms cover |s| < 0.172 to
// ~1e-13 relative), and e * log 2 added in split hi/lo precision.
__attribute__((target("avx2,fma"))) inline __m256d log4(__m256d x) {
    const __m256i bits = _mm256_castpd_si256(x);
    __m256d ed = _mm256_sub_pd(u32_to_pd(_mm256_srli_epi64(bits, 52)),
                               _mm256_set1_pd(1023.0));
    __m256d m = _mm256_castsi256_pd(_mm256_or_si256(
        _mm256_and_si256(bits, _mm256_set1_epi64x(0x000FFFFFFFFFFFFFLL)),
        _mm256_set1_epi64x(0x3FF0000000000000LL)));
    const __m256d fold =
        _mm256_cmp_pd(m, _mm256_set1_pd(1.4142135623730951), _CMP_GT_OQ);
    m = _mm256_blendv_pd(m, _mm256_mul_pd(m, _mm256_set1_pd(0.5)), fold);
    ed = _mm256_add_pd(ed, _mm256_and_pd(fold, _mm256_set1_pd(1.0)));
    const __m256d one = _mm256_set1_pd(1.0);
    const __m256d s = _mm256_div_pd(_mm256_sub_pd(m, one), _mm256_add_pd(m, one));
    const __m256d s2 = _mm256_mul_pd(s, s);
    __m256d p = _mm256_set1_pd(2.0 / 15.0);
    p = _mm256_fmadd_pd(p, s2, _mm256_set1_pd(2.0 / 13.0));
    p = _mm256_fmadd_pd(p, s2, _mm256_set1_pd(2.0 / 11.0));
    p = _mm256_fmadd_pd(p, s2, _mm256_set1_pd(2.0 / 9.0));
    p = _mm256_fmadd_pd(p, s2, _mm256_set1_pd(2.0 / 7.0));
    p = _mm256_fmadd_pd(p, s2, _mm256_set1_pd(2.0 / 5.0));
    p = _mm256_fmadd_pd(p, s2, _mm256_set1_pd(2.0 / 3.0));
    p = _mm256_fmadd_pd(p, s2, _mm256_set1_pd(2.0));
    const __m256d logm = _mm256_mul_pd(p, s);
    const __m256d ln2hi = _mm256_set1_pd(0x1.62e42fefa39efp-1);
    const __m256d ln2lo = _mm256_set1_pd(0x1.abc9e3b39803fp-56);
    return _mm256_add_pd(_mm256_fmadd_pd(ed, ln2lo, logm), _mm256_mul_pd(ed, ln2hi));
}

// Left-pack permutation (32-bit lane pairs per double) for each 4-bit
// accept mask: accepted lanes move to the front, order preserved.
alignas(32) constexpr std::uint32_t kPackLut[16][8] = {
    {0, 1, 2, 3, 4, 5, 6, 7}, {0, 1, 2, 3, 4, 5, 6, 7}, {2, 3, 0, 1, 4, 5, 6, 7},
    {0, 1, 2, 3, 4, 5, 6, 7}, {4, 5, 0, 1, 2, 3, 6, 7}, {0, 1, 4, 5, 2, 3, 6, 7},
    {2, 3, 4, 5, 0, 1, 6, 7}, {0, 1, 2, 3, 4, 5, 6, 7}, {6, 7, 0, 1, 2, 3, 4, 5},
    {0, 1, 6, 7, 2, 3, 4, 5}, {2, 3, 6, 7, 0, 1, 4, 5}, {0, 1, 2, 3, 6, 7, 4, 5},
    {4, 5, 6, 7, 0, 1, 2, 3}, {0, 1, 4, 5, 6, 7, 2, 3}, {2, 3, 4, 5, 6, 7, 0, 1},
    {0, 1, 2, 3, 4, 5, 6, 7}};

// One scalar polar candidate round: bit-identical arithmetic and word
// consumption to the loop body in detail::raw_normal_polar. Used for
// engine-block tails and the final few outputs (where a full SIMD sweep
// could accept more pairs than are still needed and overrun the stream).
inline void scalar_candidate(detail::BulkMt19937_64& e, double& y_out, double& r2_out) {
    double x, y, r2;
    do {
        x = 2.0 * detail::canonical_u64(e()) - 1.0;
        y = 2.0 * detail::canonical_u64(e()) - 1.0;
        r2 = x * x + y * y;
    } while (r2 > 1.0 || r2 == 0.0);
    y_out = y;
    r2_out = r2;
}

__attribute__((target("avx2,fma"))) void fill_fast_avx2(detail::BulkMt19937_64& e,
                                                        std::span<double> out) {
    constexpr std::size_t kStage = 1024;
    alignas(32) double ys[kStage + 8];
    alignas(32) double r2s[kStage + 8];
    const std::size_t n = out.size();
    std::size_t done = 0;
    while (done < n) {
        // Phase 1: accumulate accepted (y, r2) pairs into the staging
        // arrays. The SIMD sweep runs only while at least 4 more outputs
        // are needed: a sweep accepts at most 4 pairs, so it can never
        // consume words past the last needed accept.
        std::size_t count = 0;
        while (count + 4 <= kStage && n - (done + count) >= 4) {
            const auto words = e.peek_block();
            if (words.size() < 8) {
                scalar_candidate(e, ys[count], r2s[count]);
                ++count;
                continue;
            }
            const auto* w = reinterpret_cast<const __m256i*>(words.data());
            const __m256i w0 = _mm256_loadu_si256(w);
            const __m256i w1 = _mm256_loadu_si256(w + 1);
            // Deinterleave consecutive words into (x, y) streams.
            const __m256i xw = _mm256_permute4x64_epi64(
                _mm256_unpacklo_epi64(w0, w1), 0b11011000);
            const __m256i yw = _mm256_permute4x64_epi64(
                _mm256_unpackhi_epi64(w0, w1), 0b11011000);
            const __m256d two = _mm256_set1_pd(2.0), one = _mm256_set1_pd(1.0);
            const __m256d x = _mm256_sub_pd(_mm256_mul_pd(two, canonical4(xw)), one);
            const __m256d y = _mm256_sub_pd(_mm256_mul_pd(two, canonical4(yw)), one);
            // Scalar r2 is mul/mul/add (the baseline ISA has no FMA):
            // replicate the shape or rejection decisions could diverge.
            const __m256d r2 =
                _mm256_add_pd(_mm256_mul_pd(x, x), _mm256_mul_pd(y, y));
            const __m256d ok = _mm256_andnot_pd(
                _mm256_cmp_pd(r2, one, _CMP_GT_OQ),
                _mm256_cmp_pd(r2, _mm256_setzero_pd(), _CMP_NEQ_OQ));
            const int mask = _mm256_movemask_pd(ok);
            const __m256i perm =
                _mm256_load_si256(reinterpret_cast<const __m256i*>(kPackLut[mask]));
            _mm256_storeu_pd(ys + count, _mm256_castps_pd(_mm256_permutevar8x32_ps(
                                             _mm256_castpd_ps(y), perm)));
            _mm256_storeu_pd(r2s + count, _mm256_castps_pd(_mm256_permutevar8x32_ps(
                                              _mm256_castpd_ps(r2), perm)));
            count += static_cast<std::size_t>(
                std::popcount(static_cast<unsigned>(mask)));
            e.advance(8);
        }
        while (count < 4 && done + count < n) {
            scalar_candidate(e, ys[count], r2s[count]);
            ++count;
        }
        // Phase 2: out = y * sqrt(-2 log r2 / r2), all lanes through the
        // same polynomial log (tails padded with r2 = 1, y = 0, results
        // discarded) so a draw's value never depends on batch grouping.
        const __m256d m2 = _mm256_set1_pd(-2.0);
        for (std::size_t i = 0; i < count; i += 4) {
            if (i + 4 > count) {
                for (std::size_t k = count; k < i + 4; ++k) {
                    ys[k] = 0.0;
                    r2s[k] = 1.0;
                }
            }
            const __m256d r2 = _mm256_load_pd(r2s + i);
            const __m256d mult =
                _mm256_sqrt_pd(_mm256_div_pd(_mm256_mul_pd(m2, log4(r2)), r2));
            const __m256d v = _mm256_mul_pd(_mm256_load_pd(ys + i), mult);
            if (i + 4 <= count) {
                _mm256_storeu_pd(out.data() + done + i, v);
            } else {
                alignas(32) double tmp[4];
                _mm256_store_pd(tmp, v);
                for (std::size_t k = i; k < count; ++k) out[done + k] = tmp[k - i];
            }
        }
        done += count;
    }
}

#endif  // CBS_RANDOM_FAST_X86

}  // namespace

void Rng::fill_raw_normal_fast(std::span<double> out) {
#if defined(CBS_RANDOM_FAST_X86)
    ensure_bulk_mode();
    if (bulk_mode_ && cpu_has_avx2_fma()) {
        fill_fast_avx2(bulk_engine_, out);
        return;
    }
#endif
    fill_raw_normal(out);
}

}  // namespace cbs
