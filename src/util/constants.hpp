// Physical constants used throughout the library (CODATA 2018 exact values
// where defined by the 2019 SI redefinition).
#pragma once

#include "util/units.hpp"

namespace cbs::constants {

inline constexpr double pi = 3.14159265358979323846;

/// Boltzmann constant.
inline constexpr Q<1, 2, -2, 0, -1> k_B{1.380649e-23};  // J/K

/// Avogadro constant.
inline constexpr Q<0, 0, 0, 0, 0, -1> N_A{6.02214076e23};  // 1/mol

/// Elementary charge.
inline constexpr Charge q_e{1.602176634e-19};  // C

/// Standard laboratory temperature used as the default for noise budgets.
inline constexpr Temperature T_room{293.15};  // K

/// Standard gravity (used only for sanity-scale checks).
inline constexpr Acceleration g_0{9.80665};  // m/s^2

/// First flexural eigenvalue of a clamped-free uniform beam: lambda_1 with
/// cos(l)cosh(l) = -1.
inline constexpr double beam_lambda_1 = 1.8751040687119611;
/// Second and third flexural eigenvalues.
inline constexpr double beam_lambda_2 = 4.6940911329741746;
inline constexpr double beam_lambda_3 = 7.8547574382376126;

/// Modal mass fraction of the fundamental clamped-free mode with the shape
/// normalized to unit tip displacement: m_eff = m_beam * \int phi^2 dx / L
/// = m_beam / 4 exactly. (The other common convention, m_eff = 3/lambda_1^4
/// = 0.2427 m_beam, pairs the *static* tip stiffness 3EI/L^3 with the modal
/// resonance; we use the consistent modal pair m/4 and k1 = 1.030 k_static.)
inline constexpr double beam_effective_mass_fraction = 0.25;

}  // namespace cbs::constants
