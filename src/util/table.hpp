// Console table and CSV output for the bench harnesses: every bench prints
// the rows a paper table/figure would contain and mirrors them to a CSV file.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace cbs {

/// Fixed-column console table with right-aligned numeric formatting.
class ConsoleTable {
public:
    explicit ConsoleTable(std::vector<std::string> headers);

    /// Adds a row; the number of cells must match the header count.
    void add_row(std::vector<std::string> cells);

    /// Renders with a header rule, column padding and a title line.
    [[nodiscard]] std::string str(const std::string& title = {}) const;

    /// Convenience: format a double with the given precision.
    static std::string num(double v, int precision = 4);
    /// Engineering-style with SI prefix (e.g. 3.18e5 -> "318 k").
    static std::string si(double v, int precision = 3, const std::string& unit = {});

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/// Line-buffered CSV writer.
class CsvWriter {
public:
    CsvWriter(const std::string& path, const std::vector<std::string>& header);

    void write_row(const std::vector<double>& values);
    void write_row(const std::vector<std::string>& cells);

private:
    std::ofstream out_;
    std::size_t columns_;
};

}  // namespace cbs
