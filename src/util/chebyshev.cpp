#include "util/chebyshev.hpp"

#include <cmath>

#include "util/expect.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define CBS_CHEBYSHEV_X86 1
#endif

namespace cbs::util {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Per-axis node cap: keeps the evaluation basis in fixed stack arrays (the
/// hot path must not allocate). Degree 15 per axis is far beyond what any
/// analytic surrogate needs (coefficients decay geometrically).
constexpr std::size_t kMaxNodes = 16;

/// Forward discrete cosine projection: values at the n Gauss nodes ->
/// Chebyshev coefficients. stride/count address a 1D pencil inside a
/// flattened tensor, so the same kernel fits every axis.
void dct_pencil(const double* in, double* out, std::size_t n, std::size_t stride) {
    for (std::size_t j = 0; j < n; ++j) {
        double s = 0.0;
        for (std::size_t k = 0; k < n; ++k) {
            s += in[k * stride] *
                 std::cos(kPi * static_cast<double>(j) *
                          (static_cast<double>(k) + 0.5) / static_cast<double>(n));
        }
        const double norm = (j == 0 ? 1.0 : 2.0) / static_cast<double>(n);
        out[j * stride] = norm * s;
    }
}

#if defined(CBS_CHEBYSHEV_X86)

bool cpu_has_avx2_fma() {
    static const bool ok =
        __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
    return ok;
}

// Four points per sweep; every lane performs exactly the operations of
// ChebyshevTensor3::eval in the same order (fmadd/fmsub mirror std::fma),
// so the results are bit-identical to the scalar path.
__attribute__((target("avx2,fma"))) void eval4_avx2(
    const double* c, const std::size_t* n, const double* scale, const double* offset,
    const double* x0, const double* x1, const double* x2, double* out) {
    __m256d t0[kMaxNodes], t1[kMaxNodes], t2[kMaxNodes];
    const __m256d one = _mm256_set1_pd(1.0);

    const double* xs[3] = {x0, x1, x2};
    __m256d* ts[3] = {t0, t1, t2};
    for (int a = 0; a < 3; ++a) {
        const __m256d x = _mm256_loadu_pd(xs[a]);
        const __m256d u =
            _mm256_fmadd_pd(x, _mm256_set1_pd(scale[a]), _mm256_set1_pd(offset[a]));
        __m256d* t = ts[a];
        t[0] = one;
        if (n[a] > 1) t[1] = u;
        const __m256d two_u = _mm256_add_pd(u, u);
        for (std::size_t j = 2; j < n[a]; ++j) {
            t[j] = _mm256_fmsub_pd(two_u, t[j - 1], t[j - 2]);
        }
    }

    __m256d sum = _mm256_setzero_pd();
    std::size_t idx = 0;
    for (std::size_t i = 0; i < n[0]; ++i) {
        for (std::size_t j = 0; j < n[1]; ++j) {
            const __m256d w = _mm256_mul_pd(t0[i], t1[j]);
            for (std::size_t k = 0; k < n[2]; ++k, ++idx) {
                sum = _mm256_fmadd_pd(_mm256_mul_pd(w, t2[k]),
                                      _mm256_set1_pd(c[idx]), sum);
            }
        }
    }
    _mm256_storeu_pd(out, sum);
}

#endif  // CBS_CHEBYSHEV_X86

}  // namespace

// ----------------------------------------------------------- ChebyshevSeries

double ChebyshevSeries::node(std::size_t k, std::size_t n, double lo, double hi) {
    CBS_EXPECTS(k < n);
    const double u =
        std::cos(kPi * (static_cast<double>(k) + 0.5) / static_cast<double>(n));
    return 0.5 * (lo + hi) + 0.5 * (hi - lo) * u;
}

ChebyshevSeries ChebyshevSeries::fit(double lo, double hi, std::size_t degree,
                                     const std::function<double(double)>& f) {
    CBS_EXPECTS(static_cast<bool>(f));
    const std::size_t n = degree + 1;
    std::vector<double> values(n);
    for (std::size_t k = 0; k < n; ++k) values[k] = f(node(k, n, lo, hi));
    return fit_from_node_values(lo, hi, values);
}

ChebyshevSeries ChebyshevSeries::fit_from_node_values(double lo, double hi,
                                                      const std::vector<double>& values) {
    CBS_EXPECTS(hi > lo);
    CBS_EXPECTS(!values.empty());
    ChebyshevSeries s;
    s.lo_ = lo;
    s.hi_ = hi;
    s.scale_ = 2.0 / (hi - lo);
    s.offset_ = -(lo + hi) / (hi - lo);
    s.c_.resize(values.size());
    dct_pencil(values.data(), s.c_.data(), values.size(), 1);
    return s;
}

double ChebyshevSeries::eval(double x) const {
    CBS_EXPECTS(!c_.empty());
    const double xc = std::fmin(std::fmax(x, lo_), hi_);
    const double u = std::fma(xc, scale_, offset_);
    double b1 = 0.0, b2 = 0.0;
    for (std::size_t j = c_.size(); j-- > 1;) {
        const double b0 = std::fma(2.0 * u, b1, c_[j] - b2);
        b2 = b1;
        b1 = b0;
    }
    return std::fma(u, b1, c_[0] - b2);
}

double ChebyshevSeries::derivative(double x) const {
    CBS_EXPECTS(!c_.empty());
    const std::size_t n = c_.size();
    if (n == 1) return 0.0;
    // d_{j-1} = d_{j+1} + 2 j c_j (derivative coefficients, descending j).
    std::vector<double> d(n - 1, 0.0);
    for (std::size_t j = n - 1; j >= 1; --j) {
        d[j - 1] = (j + 1 < n - 1 ? d[j + 1] : 0.0) + 2.0 * static_cast<double>(j) * c_[j];
    }
    d[0] *= 0.5;
    ChebyshevSeries ds;
    ds.lo_ = lo_;
    ds.hi_ = hi_;
    ds.scale_ = scale_;
    ds.offset_ = offset_;
    ds.c_ = std::move(d);
    return ds.eval(x) * scale_;
}

double ChebyshevSeries::truncation_estimate() const {
    const std::size_t n = c_.size();
    if (n < 2) return 0.0;
    return std::abs(c_[n - 1]) + std::abs(c_[n - 2]);
}

// ---------------------------------------------------------- ChebyshevTensor3

std::vector<std::array<double, 3>> ChebyshevTensor3::nodes(
    const Box& box, const std::array<std::size_t, 3>& degree) {
    const std::size_t n0 = degree[0] + 1, n1 = degree[1] + 1, n2 = degree[2] + 1;
    std::vector<std::array<double, 3>> out;
    out.reserve(n0 * n1 * n2);
    for (std::size_t i = 0; i < n0; ++i) {
        const double a = ChebyshevSeries::node(i, n0, box.lo[0], box.hi[0]);
        for (std::size_t j = 0; j < n1; ++j) {
            const double b = ChebyshevSeries::node(j, n1, box.lo[1], box.hi[1]);
            for (std::size_t k = 0; k < n2; ++k) {
                out.push_back({a, b, ChebyshevSeries::node(k, n2, box.lo[2], box.hi[2])});
            }
        }
    }
    return out;
}

ChebyshevTensor3 ChebyshevTensor3::fit(
    const Box& box, const std::array<std::size_t, 3>& degree,
    const std::function<double(double, double, double)>& f) {
    CBS_EXPECTS(static_cast<bool>(f));
    const auto pts = nodes(box, degree);
    std::vector<double> values(pts.size());
    for (std::size_t i = 0; i < pts.size(); ++i) {
        values[i] = f(pts[i][0], pts[i][1], pts[i][2]);
    }
    return fit_from_node_values(box, degree, values);
}

ChebyshevTensor3 ChebyshevTensor3::fit_from_node_values(
    const Box& box, const std::array<std::size_t, 3>& degree,
    const std::vector<double>& values) {
    ChebyshevTensor3 t;
    t.box_ = box;
    for (int a = 0; a < 3; ++a) {
        CBS_EXPECTS(box.hi[a] > box.lo[a]);
        t.n_[a] = degree[a] + 1;
        CBS_EXPECTS(t.n_[a] <= kMaxNodes);
        t.scale_[a] = 2.0 / (box.hi[a] - box.lo[a]);
        t.offset_[a] = -(box.lo[a] + box.hi[a]) / (box.hi[a] - box.lo[a]);
    }
    const std::size_t n0 = t.n_[0], n1 = t.n_[1], n2 = t.n_[2];
    CBS_EXPECTS(values.size() == n0 * n1 * n2);
    t.c_ = values;
    // Separable projection: DCT along each axis in turn.
    std::vector<double> tmp(t.c_.size());
    for (std::size_t i = 0; i < n0; ++i) {       // axis 2 pencils
        for (std::size_t j = 0; j < n1; ++j) {
            dct_pencil(t.c_.data() + (i * n1 + j) * n2, tmp.data() + (i * n1 + j) * n2, n2,
                       1);
        }
    }
    for (std::size_t i = 0; i < n0; ++i) {       // axis 1 pencils
        for (std::size_t k = 0; k < n2; ++k) {
            dct_pencil(tmp.data() + i * n1 * n2 + k, t.c_.data() + i * n1 * n2 + k, n1, n2);
        }
    }
    for (std::size_t j = 0; j < n1; ++j) {       // axis 0 pencils
        for (std::size_t k = 0; k < n2; ++k) {
            dct_pencil(t.c_.data() + j * n2 + k, tmp.data() + j * n2 + k, n0, n1 * n2);
        }
    }
    t.c_ = std::move(tmp);
    return t;
}

double ChebyshevTensor3::eval(double x0, double x1, double x2) const {
    CBS_EXPECTS(!c_.empty());
    double t0[kMaxNodes], t1[kMaxNodes], t2[kMaxNodes];
    const double xs[3] = {x0, x1, x2};
    double* ts[3] = {t0, t1, t2};
    for (int a = 0; a < 3; ++a) {
        const double u = std::fma(xs[a], scale_[a], offset_[a]);
        double* t = ts[a];
        t[0] = 1.0;
        if (n_[a] > 1) t[1] = u;
        const double two_u = u + u;
        for (std::size_t j = 2; j < n_[a]; ++j) {
            t[j] = std::fma(two_u, t[j - 1], -t[j - 2]);
        }
    }
    double sum = 0.0;
    std::size_t idx = 0;
    for (std::size_t i = 0; i < n_[0]; ++i) {
        for (std::size_t j = 0; j < n_[1]; ++j) {
            const double w = t0[i] * t1[j];
            for (std::size_t k = 0; k < n_[2]; ++k, ++idx) {
                sum = std::fma(w * t2[k], c_[idx], sum);
            }
        }
    }
    return sum;
}

void ChebyshevTensor3::eval_many(const double* x0, const double* x1, const double* x2,
                                 double* out, std::size_t n) const {
    std::size_t i = 0;
#if defined(CBS_CHEBYSHEV_X86)
    if (cpu_has_avx2_fma()) {
        for (; i + 4 <= n; i += 4) {
            eval4_avx2(c_.data(), n_.data(), scale_.data(), offset_.data(), x0 + i, x1 + i,
                       x2 + i, out + i);
        }
    }
#endif
    for (; i < n; ++i) out[i] = eval(x0[i], x1[i], x2[i]);
}

double ChebyshevTensor3::truncation_estimate() const {
    if (c_.empty()) return 0.0;
    // L1 mass of the highest-order slice along each axis: the classic
    // a-posteriori bound for a tensor interpolant of an analytic function.
    double worst = 0.0;
    const std::size_t n0 = n_[0], n1 = n_[1], n2 = n_[2];
    auto at = [&](std::size_t i, std::size_t j, std::size_t k) {
        return std::abs(c_[(i * n1 + j) * n2 + k]);
    };
    if (n0 > 1) {
        double s = 0.0;
        for (std::size_t j = 0; j < n1; ++j) {
            for (std::size_t k = 0; k < n2; ++k) s += at(n0 - 1, j, k);
        }
        worst = std::max(worst, s);
    }
    if (n1 > 1) {
        double s = 0.0;
        for (std::size_t i = 0; i < n0; ++i) {
            for (std::size_t k = 0; k < n2; ++k) s += at(i, n1 - 1, k);
        }
        worst = std::max(worst, s);
    }
    if (n2 > 1) {
        double s = 0.0;
        for (std::size_t i = 0; i < n0; ++i) {
            for (std::size_t j = 0; j < n1; ++j) s += at(i, j, n2 - 1);
        }
        worst = std::max(worst, s);
    }
    return worst;
}

}  // namespace cbs::util
