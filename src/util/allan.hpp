// Allan (two-sample) deviation — the standard frequency-stability metric for
// the resonant sensor's counter readout.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace cbs {

struct AllanPoint {
    double tau = 0.0;   ///< averaging time [s]
    double adev = 0.0;  ///< Allan deviation (same units as the input samples)
    std::size_t pairs = 0;  ///< number of (overlapping) sample pairs averaged
};

/// Overlapping Allan deviation of a uniformly-sampled series `y` (e.g.
/// fractional-frequency or absolute-frequency readings) with base sampling
/// interval `tau0` seconds. Returns points for tau = m*tau0 with m swept in
/// octaves while at least `min_pairs` pairs remain.
std::vector<AllanPoint> allan_deviation(std::span<const double> y, double tau0,
                                        std::size_t min_pairs = 4);

}  // namespace cbs
