// Allan (two-sample) deviation — the standard frequency-stability metric for
// the resonant sensor's counter readout.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace cbs {

struct AllanPoint {
    double tau = 0.0;   ///< averaging time [s]
    double adev = 0.0;  ///< Allan deviation (same units as the input samples)
    std::size_t pairs = 0;  ///< number of (overlapping) sample pairs averaged
};

/// Overlapping Allan deviation of a uniformly-sampled series `y` (e.g.
/// fractional-frequency or absolute-frequency readings) with base sampling
/// interval `tau0` seconds. Returns points for tau = m*tau0 with m swept in
/// octaves while at least `min_pairs` pairs remain.
std::vector<AllanPoint> allan_deviation(std::span<const double> y, double tau0,
                                        std::size_t min_pairs = 4);

/// Streaming form of the overlapping estimator above: samples are fed one
/// at a time and the octave ladder tau = m*tau0, m = 1, 2, 4, ... 2^(L-1)
/// is maintained incrementally in memory bounded by the largest averaging
/// factor (one shared ring of prefix sums plus one accumulator per level),
/// independent of how many samples ever stream through — the shape a
/// multi-hour soak run needs.
///
/// The arithmetic replays allan_deviation() exactly: the same left-to-right
/// prefix summation, the same block-mean differences in the same order, the
/// same pair accumulation. ladder() over n streamed samples is therefore
/// bit-identical to the batch call on the same n-sample series for every
/// level both report (pinned by tests/util/allan_test.cpp).
class StreamingAllan {
public:
    /// `max_levels` octave levels (m up to 2^(max_levels-1)); the prefix
    /// ring holds 2*2^(max_levels-1) + 1 doubles, the whole-run memory cap.
    explicit StreamingAllan(double tau0, std::size_t max_levels = 13,
                            std::size_t min_pairs = 4);

    /// Feeds one sample. Never allocates (the ring is sized up front).
    void add(double y) noexcept;

    /// Ladder points whose level satisfies the batch sweep condition
    /// (2m + min_pairs <= count()), smallest tau first.
    [[nodiscard]] std::vector<AllanPoint> ladder() const;

    /// Smallest deviation across the ladder — the stability floor the
    /// detection-limit analysis reads off the Allan plot. 0 while the
    /// ladder is empty.
    [[nodiscard]] double floor_adev() const;

    [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
    [[nodiscard]] double tau0() const noexcept { return tau0_; }

    /// Forgets every sample; keeps tau0/levels/ring capacity.
    void reset() noexcept;

private:
    struct Level {
        std::size_t m = 1;       ///< averaging factor (tau = m * tau0)
        double acc = 0.0;        ///< sum of squared block-mean differences
        std::uint64_t pairs = 0; ///< overlapping pairs folded into acc
    };

    double tau0_;
    std::size_t min_pairs_;
    std::vector<Level> levels_;
    std::vector<double> ring_;  ///< prefix sums S[k], k ∈ [n-ring+1, n]
    double prefix_ = 0.0;       ///< running S[n]
    std::uint64_t n_ = 0;       ///< samples streamed
};

}  // namespace cbs
