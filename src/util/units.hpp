// Compile-time dimensional analysis for SI quantities.
//
// A cbs::Quantity carries its dimension as six template parameters — the SI
// base-dimension exponents for mass, length, time, current, temperature and
// amount of substance — each stored DOUBLED so that half-integer dimensions
// (e.g. the V/sqrt(Hz) of a noise spectral density) stay representable and
// sqrt() is closed over the type system.
//
// Public APIs of the physics-facing modules (phys, mech, bio, core) use these
// types; mixing metres with volts is a compile error, and unit conversion
// bugs (the classic microns-vs-metres failure) cannot type-check.
//
//     using namespace cbs::literals;
//     Length l = 150.0_um;
//     Frequency f0 = 0.1615 * (t / (l * l)) * sqrt(e_mod / rho);
//
// All values are stored as double in coherent SI units (kg, m, s, A, K, mol).
#pragma once

#include <cmath>
#include <compare>
#include <ostream>
#include <string>

namespace cbs {

/// Dimensioned scalar. Template parameters are the SI base-dimension
/// exponents multiplied by two (M2 = 2 x mass exponent, ...).
template <int M2, int L2, int T2, int I2, int K2, int N2>
class Quantity {
public:
    constexpr Quantity() = default;
    constexpr explicit Quantity(double v) : value_(v) {}

    /// Numeric value in coherent SI units.
    [[nodiscard]] constexpr double value() const { return value_; }

    /// Dimensionless quantities convert implicitly to double.
    constexpr operator double() const  // NOLINT(google-explicit-constructor)
        requires(M2 == 0 && L2 == 0 && T2 == 0 && I2 == 0 && K2 == 0 && N2 == 0)
    {
        return value_;
    }

    constexpr Quantity operator-() const { return Quantity{-value_}; }
    constexpr Quantity operator+() const { return *this; }

    constexpr Quantity& operator+=(Quantity other) {
        value_ += other.value_;
        return *this;
    }
    constexpr Quantity& operator-=(Quantity other) {
        value_ -= other.value_;
        return *this;
    }
    constexpr Quantity& operator*=(double s) {
        value_ *= s;
        return *this;
    }
    constexpr Quantity& operator/=(double s) {
        value_ /= s;
        return *this;
    }

    friend constexpr Quantity operator+(Quantity a, Quantity b) {
        return Quantity{a.value_ + b.value_};
    }
    friend constexpr Quantity operator-(Quantity a, Quantity b) {
        return Quantity{a.value_ - b.value_};
    }
    friend constexpr Quantity operator*(Quantity a, double s) { return Quantity{a.value_ * s}; }
    friend constexpr Quantity operator*(double s, Quantity a) { return Quantity{s * a.value_}; }
    friend constexpr Quantity operator/(Quantity a, double s) { return Quantity{a.value_ / s}; }

    friend constexpr auto operator<=>(Quantity a, Quantity b) = default;

    /// Human-readable dimension, e.g. "kg m^-1 s^-2".
    static std::string unit_string() {
        std::string out;
        auto append = [&out](const char* sym, int e2) {
            if (e2 == 0) return;
            if (!out.empty()) out += ' ';
            out += sym;
            if (e2 != 2) {
                out += '^';
                if (e2 % 2 == 0) {
                    out += std::to_string(e2 / 2);
                } else {
                    out += std::to_string(e2) + "/2";
                }
            }
        };
        append("kg", M2);
        append("m", L2);
        append("s", T2);
        append("A", I2);
        append("K", K2);
        append("mol", N2);
        if (out.empty()) out = "1";
        return out;
    }

    friend std::ostream& operator<<(std::ostream& os, Quantity q) {
        os << q.value_;
        if (auto u = unit_string(); u != "1") os << ' ' << u;
        return os;
    }

private:
    double value_{};
};

template <int Ma, int La, int Ta, int Ia, int Ka, int Na, int Mb, int Lb, int Tb, int Ib, int Kb,
          int Nb>
constexpr auto operator*(Quantity<Ma, La, Ta, Ia, Ka, Na> a, Quantity<Mb, Lb, Tb, Ib, Kb, Nb> b) {
    return Quantity<Ma + Mb, La + Lb, Ta + Tb, Ia + Ib, Ka + Kb, Na + Nb>{a.value() * b.value()};
}

template <int Ma, int La, int Ta, int Ia, int Ka, int Na, int Mb, int Lb, int Tb, int Ib, int Kb,
          int Nb>
constexpr auto operator/(Quantity<Ma, La, Ta, Ia, Ka, Na> a, Quantity<Mb, Lb, Tb, Ib, Kb, Nb> b) {
    return Quantity<Ma - Mb, La - Lb, Ta - Tb, Ia - Ib, Ka - Kb, Na - Nb>{a.value() / b.value()};
}

template <int M2, int L2, int T2, int I2, int K2, int N2>
constexpr auto operator/(double s, Quantity<M2, L2, T2, I2, K2, N2> q) {
    return Quantity<-M2, -L2, -T2, -I2, -K2, -N2>{s / q.value()};
}

/// sqrt of a quantity; result dimension is half the operand's (always
/// representable thanks to doubled exponent storage, as long as the operand
/// has integer or half-integer dimensions).
template <int M2, int L2, int T2, int I2, int K2, int N2>
    requires(M2 % 2 == 0 && L2 % 2 == 0 && T2 % 2 == 0 && I2 % 2 == 0 && K2 % 2 == 0 && N2 % 2 == 0)
auto sqrt(Quantity<M2, L2, T2, I2, K2, N2> q) {
    return Quantity<M2 / 2, L2 / 2, T2 / 2, I2 / 2, K2 / 2, N2 / 2>{std::sqrt(q.value())};
}

/// Integral power with compile-time exponent: pow<3>(length) is a Volume.
template <int P, int M2, int L2, int T2, int I2, int K2, int N2>
constexpr auto pow(Quantity<M2, L2, T2, I2, K2, N2> q) {
    double v = 1.0;
    for (int i = 0; i < (P >= 0 ? P : -P); ++i) v *= q.value();
    if constexpr (P < 0) v = 1.0 / v;
    return Quantity<M2 * P, L2 * P, T2 * P, I2 * P, K2 * P, N2 * P>{v};
}

template <int M2, int L2, int T2, int I2, int K2, int N2>
constexpr auto abs(Quantity<M2, L2, T2, I2, K2, N2> q) {
    return Quantity<M2, L2, T2, I2, K2, N2>{q.value() < 0 ? -q.value() : q.value()};
}

template <int M2, int L2, int T2, int I2, int K2, int N2>
constexpr auto min(Quantity<M2, L2, T2, I2, K2, N2> a, Quantity<M2, L2, T2, I2, K2, N2> b) {
    return a < b ? a : b;
}

template <int M2, int L2, int T2, int I2, int K2, int N2>
constexpr auto max(Quantity<M2, L2, T2, I2, K2, N2> a, Quantity<M2, L2, T2, I2, K2, N2> b) {
    return a < b ? b : a;
}

// ---------------------------------------------------------------------------
// Dimension aliases. Q<m,l,t,i,k,n> takes the *actual* SI exponents.
// ---------------------------------------------------------------------------
template <int M, int L, int T, int I = 0, int K = 0, int N = 0>
using Q = Quantity<2 * M, 2 * L, 2 * T, 2 * I, 2 * K, 2 * N>;

using Dimensionless = Q<0, 0, 0>;
using Mass = Q<1, 0, 0>;
using Length = Q<0, 1, 0>;
using Time = Q<0, 0, 1>;
using Current = Q<0, 0, 0, 1>;
using Temperature = Q<0, 0, 0, 0, 1>;
using AmountOfSubstance = Q<0, 0, 0, 0, 0, 1>;

using Area = Q<0, 2, 0>;
using Volume = Q<0, 3, 0>;
using Velocity = Q<0, 1, -1>;
using Acceleration = Q<0, 1, -2>;
using Frequency = Q<0, 0, -1>;
using AngularFrequency = Frequency;  ///< rad/s; radians are dimensionless
using Force = Q<1, 1, -2>;
using Stress = Q<1, -1, -2>;  ///< Pa
using Pressure = Stress;
using SurfaceStress = Q<1, 0, -2>;  ///< N/m (thin-film / adsorbate-induced)
using Stiffness = Q<1, 0, -2>;      ///< N/m (spring constant; same dims as SurfaceStress)
using Energy = Q<1, 2, -2>;
using Power = Q<1, 2, -3>;
using Charge = Q<0, 0, 1, 1>;
using Voltage = Q<1, 2, -3, -1>;
using Resistance = Q<1, 2, -3, -2>;
using Conductance = Q<-1, -2, 3, 2>;
using Capacitance = Q<-1, -2, 4, 2>;
using Inductance = Q<1, 2, -2, -2>;
using MagneticFluxDensity = Q<1, 0, -2, -1>;  ///< tesla
using MassDensity = Q<1, -3, 0>;
using DynamicViscosity = Q<1, -1, -1>;  ///< Pa*s
using MolarConcentration = Q<0, -3, 0, 0, 0, 1>;
using MolarMass = Q<1, 0, 0, 0, 0, -1>;
using ArealNumberDensity = Q<0, -2, 0>;  ///< molecules per m^2 (count is dimensionless)
using SurfaceMassDensity = Q<1, -2, 0>;
using MassPerFrequency = Q<1, 0, 1>;           ///< kg/Hz (inverse mass responsivity)
using FrequencyPerMass = Q<-1, 0, -1>;         ///< Hz/kg (mass responsivity)
using LengthPerSurfaceStress = Q<-1, 1, 2>;    ///< m/(N/m) (Stoney responsivity)
using InverseMolarTime = Q<0, 3, -1, 0, 0, -1>;  ///< 1/(M*s) ~ m^3/(mol*s) (k_on)
using Compliance = Q<-1, 0, 2>;                ///< m/N

/// Spectral densities (per sqrt(Hz)) — half-integer time exponents.
using VoltageNoiseDensity = Quantity<2, 4, -5, -2, 0, 0>;  ///< V/sqrt(Hz)
using ForceNoiseDensity = Quantity<2, 2, -3, 0, 0, 0>;     ///< N/sqrt(Hz)

// ---------------------------------------------------------------------------
// Literals. All produce coherent SI values.
// ---------------------------------------------------------------------------
namespace literals {

#define CBS_LITERAL(suffix, type, factor)                                               \
    constexpr type operator""_##suffix(long double v) {                                \
        return type{static_cast<double>(v) * (factor)};                                \
    }                                                                                  \
    constexpr type operator""_##suffix(unsigned long long v) {                         \
        return type{static_cast<double>(v) * (factor)};                                \
    }

CBS_LITERAL(kg, Mass, 1.0)
CBS_LITERAL(g, Mass, 1e-3)
CBS_LITERAL(mg, Mass, 1e-6)
CBS_LITERAL(ug, Mass, 1e-9)
CBS_LITERAL(ng, Mass, 1e-12)
CBS_LITERAL(pg, Mass, 1e-15)
CBS_LITERAL(fg, Mass, 1e-18)

CBS_LITERAL(m, Length, 1.0)
CBS_LITERAL(cm, Length, 1e-2)
CBS_LITERAL(mm, Length, 1e-3)
CBS_LITERAL(um, Length, 1e-6)
CBS_LITERAL(nm, Length, 1e-9)

CBS_LITERAL(s, Time, 1.0)
CBS_LITERAL(ms, Time, 1e-3)
CBS_LITERAL(us, Time, 1e-6)
CBS_LITERAL(ns, Time, 1e-9)
CBS_LITERAL(minute, Time, 60.0)
CBS_LITERAL(hour, Time, 3600.0)

CBS_LITERAL(Hz, Frequency, 1.0)
CBS_LITERAL(kHz, Frequency, 1e3)
CBS_LITERAL(MHz, Frequency, 1e6)

CBS_LITERAL(N, Force, 1.0)
CBS_LITERAL(mN, Force, 1e-3)
CBS_LITERAL(uN, Force, 1e-6)
CBS_LITERAL(nN, Force, 1e-9)
CBS_LITERAL(pN, Force, 1e-12)

CBS_LITERAL(Pa, Stress, 1.0)
CBS_LITERAL(kPa, Stress, 1e3)
CBS_LITERAL(MPa, Stress, 1e6)
CBS_LITERAL(GPa, Stress, 1e9)

CBS_LITERAL(N_per_m, SurfaceStress, 1.0)
CBS_LITERAL(mN_per_m, SurfaceStress, 1e-3)

CBS_LITERAL(J, Energy, 1.0)
CBS_LITERAL(W, Power, 1.0)
CBS_LITERAL(mW, Power, 1e-3)
CBS_LITERAL(uW, Power, 1e-6)

CBS_LITERAL(V, Voltage, 1.0)
CBS_LITERAL(mV, Voltage, 1e-3)
CBS_LITERAL(uV, Voltage, 1e-6)
CBS_LITERAL(nV, Voltage, 1e-9)

CBS_LITERAL(A, Current, 1.0)
CBS_LITERAL(mA, Current, 1e-3)
CBS_LITERAL(uA, Current, 1e-6)
CBS_LITERAL(nA, Current, 1e-9)

CBS_LITERAL(Ohm, Resistance, 1.0)
CBS_LITERAL(kOhm, Resistance, 1e3)
CBS_LITERAL(MOhm, Resistance, 1e6)

CBS_LITERAL(F, Capacitance, 1.0)
CBS_LITERAL(nF, Capacitance, 1e-9)
CBS_LITERAL(pF, Capacitance, 1e-12)
CBS_LITERAL(fF, Capacitance, 1e-15)

CBS_LITERAL(T, MagneticFluxDensity, 1.0)
CBS_LITERAL(mT, MagneticFluxDensity, 1e-3)

CBS_LITERAL(K, Temperature, 1.0)
CBS_LITERAL(mol, AmountOfSubstance, 1.0)

// Molar concentration: 1 M = 1 mol/L = 1000 mol/m^3.
CBS_LITERAL(Molar, MolarConcentration, 1e3)
CBS_LITERAL(mM, MolarConcentration, 1.0)
CBS_LITERAL(uM, MolarConcentration, 1e-3)
CBS_LITERAL(nM, MolarConcentration, 1e-6)
CBS_LITERAL(pM, MolarConcentration, 1e-9)
CBS_LITERAL(fM, MolarConcentration, 1e-12)

CBS_LITERAL(liter, Volume, 1e-3)
CBS_LITERAL(uL, Volume, 1e-9)

// Molar mass: 1 Da corresponds to 1 g/mol.
CBS_LITERAL(Da, MolarMass, 1e-3)
CBS_LITERAL(kDa, MolarMass, 1.0)

#undef CBS_LITERAL

}  // namespace literals

}  // namespace cbs
