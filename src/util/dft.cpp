#include "util/dft.hpp"

#include <cmath>

#include "util/constants.hpp"
#include "util/expect.hpp"

namespace cbs {

namespace {

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

}  // namespace

void fft(std::vector<std::complex<double>>& x, bool inverse) {
    const std::size_t n = x.size();
    CBS_EXPECTS(is_power_of_two(n));
    // Bit-reversal permutation.
    for (std::size_t i = 1, j = 0; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1) j ^= bit;
        j ^= bit;
        if (i < j) std::swap(x[i], x[j]);
    }
    for (std::size_t len = 2; len <= n; len <<= 1) {
        const double ang = 2.0 * constants::pi / static_cast<double>(len) * (inverse ? 1.0 : -1.0);
        const std::complex<double> wlen(std::cos(ang), std::sin(ang));
        for (std::size_t i = 0; i < n; i += len) {
            std::complex<double> w(1.0, 0.0);
            for (std::size_t k = 0; k < len / 2; ++k) {
                const std::complex<double> u = x[i + k];
                const std::complex<double> v = x[i + k + len / 2] * w;
                x[i + k] = u + v;
                x[i + k + len / 2] = u - v;
                w *= wlen;
            }
        }
    }
    if (inverse) {
        for (auto& c : x) c /= static_cast<double>(n);
    }
}

Psd welch_psd(std::span<const double> x, double sample_rate_hz, std::size_t nfft) {
    CBS_EXPECTS(sample_rate_hz > 0.0);
    CBS_EXPECTS(is_power_of_two(nfft));
    CBS_EXPECTS(nfft <= x.size());

    std::vector<double> window(nfft);
    double window_power = 0.0;
    for (std::size_t i = 0; i < nfft; ++i) {
        window[i] = 0.5 * (1.0 - std::cos(2.0 * constants::pi * static_cast<double>(i) /
                                          static_cast<double>(nfft)));
        window_power += window[i] * window[i];
    }

    Psd out;
    out.frequency.resize(nfft / 2 + 1);
    out.power.assign(nfft / 2 + 1, 0.0);
    for (std::size_t i = 0; i <= nfft / 2; ++i) {
        out.frequency[i] = sample_rate_hz * static_cast<double>(i) / static_cast<double>(nfft);
    }

    const std::size_t hop = nfft / 2;  // 50% overlap
    std::size_t segments = 0;
    std::vector<std::complex<double>> buf(nfft);
    for (std::size_t start = 0; start + nfft <= x.size(); start += hop) {
        for (std::size_t i = 0; i < nfft; ++i) buf[i] = {x[start + i] * window[i], 0.0};
        fft(buf);
        for (std::size_t i = 0; i <= nfft / 2; ++i) {
            double p = std::norm(buf[i]);
            // One-sided: double all interior bins.
            if (i != 0 && i != nfft / 2) p *= 2.0;
            out.power[i] += p / (sample_rate_hz * window_power);
        }
        ++segments;
    }
    CBS_ENSURES(segments > 0);
    for (auto& p : out.power) p /= static_cast<double>(segments);
    return out;
}

double band_power(const Psd& psd, double f_lo, double f_hi) {
    CBS_EXPECTS(f_hi >= f_lo);
    double acc = 0.0;
    for (std::size_t i = 0; i + 1 < psd.frequency.size(); ++i) {
        const double f0 = psd.frequency[i];
        const double f1 = psd.frequency[i + 1];
        if (f1 < f_lo || f0 > f_hi) continue;
        const double a = std::max(f0, f_lo);
        const double b = std::min(f1, f_hi);
        // Linear interpolation of the density across the bin.
        auto interp = [&](double f) {
            const double t = (f - f0) / (f1 - f0);
            return psd.power[i] * (1.0 - t) + psd.power[i + 1] * t;
        };
        acc += 0.5 * (interp(a) + interp(b)) * (b - a);
    }
    return acc;
}

}  // namespace cbs
