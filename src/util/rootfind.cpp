#include "util/rootfind.hpp"

#include <cmath>
#include <limits>
#include <utility>

#include "util/expect.hpp"

namespace cbs::util {

namespace {
constexpr double kEps = std::numeric_limits<double>::epsilon();
}

RootResult find_root(const std::function<double(double)>& f, double a, double b,
                     double xtol, int max_iter) {
    CBS_EXPECTS(static_cast<bool>(f));
    CBS_EXPECTS(b > a);
    CBS_EXPECTS(xtol >= 0.0);
    RootResult r;
    double fa = f(a), fb = f(b);
    if (fa == 0.0) return {a, fa, 0, true};
    if (fb == 0.0) return {b, fb, 0, true};
    if ((fa > 0.0) == (fb > 0.0)) {
        r.x = std::abs(fa) < std::abs(fb) ? a : b;
        r.f = std::abs(fa) < std::abs(fb) ? fa : fb;
        return r;  // not a bracket
    }
    // Brent: b is the best iterate, a the previous, c the counterpoint.
    double c = a, fc = fa;
    double d = b - a, e = d;
    for (int it = 1; it <= max_iter; ++it) {
        if ((fb > 0.0) == (fc > 0.0)) {
            c = a;
            fc = fa;
            d = e = b - a;
        }
        if (std::abs(fc) < std::abs(fb)) {
            a = b; b = c; c = a;
            fa = fb; fb = fc; fc = fa;
        }
        const double tol = 2.0 * kEps * std::abs(b) + 0.5 * xtol;
        const double m = 0.5 * (c - b);
        if (std::abs(m) <= tol || fb == 0.0) {
            return {b, fb, it, true};
        }
        if (std::abs(e) >= tol && std::abs(fa) > std::abs(fb)) {
            // Inverse quadratic interpolation (secant when a == c).
            const double s = fb / fa;
            double p, q;
            if (a == c) {
                p = 2.0 * m * s;
                q = 1.0 - s;
            } else {
                const double qq = fa / fc, rr = fb / fc;
                p = s * (2.0 * m * qq * (qq - rr) - (b - a) * (rr - 1.0));
                q = (qq - 1.0) * (rr - 1.0) * (s - 1.0);
            }
            if (p > 0.0) q = -q;
            p = std::abs(p);
            if (2.0 * p < std::min(3.0 * m * q - std::abs(tol * q), std::abs(e * q))) {
                e = d;
                d = p / q;
            } else {
                d = m;
                e = m;
            }
        } else {
            d = m;
            e = m;
        }
        a = b;
        fa = fb;
        b += std::abs(d) > tol ? d : (m > 0.0 ? tol : -tol);
        fb = f(b);
    }
    return {b, fb, max_iter, false};
}

RootResult maximize(const std::function<double(double)>& f, double a, double b,
                    double xtol, int max_iter) {
    CBS_EXPECTS(static_cast<bool>(f));
    CBS_EXPECTS(b > a);
    CBS_EXPECTS(xtol >= 0.0);
    constexpr double kInvPhi = 0.6180339887498949;  // 1/phi
    double x1 = b - kInvPhi * (b - a);
    double x2 = a + kInvPhi * (b - a);
    double f1 = f(x1), f2 = f(x2);
    int it = 0;
    while (it < max_iter) {
        ++it;
        if (b - a <= xtol + 4.0 * kEps * (std::abs(a) + std::abs(b))) break;
        if (f1 < f2) {
            a = x1;
            x1 = x2;
            f1 = f2;
            x2 = a + kInvPhi * (b - a);
            f2 = f(x2);
        } else {
            b = x2;
            x2 = x1;
            f2 = f1;
            x1 = b - kInvPhi * (b - a);
            f1 = f(x1);
        }
    }
    RootResult r;
    r.x = f1 > f2 ? x1 : x2;
    r.f = f1 > f2 ? f1 : f2;
    r.iterations = it;
    r.converged = true;
    return r;
}

}  // namespace cbs::util
