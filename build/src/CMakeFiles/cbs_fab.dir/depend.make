# Empty dependencies file for cbs_fab.
# This may be replaced when dependencies are built.
