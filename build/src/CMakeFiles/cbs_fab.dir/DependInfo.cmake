
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fab/drc.cpp" "src/CMakeFiles/cbs_fab.dir/fab/drc.cpp.o" "gcc" "src/CMakeFiles/cbs_fab.dir/fab/drc.cpp.o.d"
  "/root/repo/src/fab/etch.cpp" "src/CMakeFiles/cbs_fab.dir/fab/etch.cpp.o" "gcc" "src/CMakeFiles/cbs_fab.dir/fab/etch.cpp.o.d"
  "/root/repo/src/fab/layer.cpp" "src/CMakeFiles/cbs_fab.dir/fab/layer.cpp.o" "gcc" "src/CMakeFiles/cbs_fab.dir/fab/layer.cpp.o.d"
  "/root/repo/src/fab/layout.cpp" "src/CMakeFiles/cbs_fab.dir/fab/layout.cpp.o" "gcc" "src/CMakeFiles/cbs_fab.dir/fab/layout.cpp.o.d"
  "/root/repo/src/fab/layout_gen.cpp" "src/CMakeFiles/cbs_fab.dir/fab/layout_gen.cpp.o" "gcc" "src/CMakeFiles/cbs_fab.dir/fab/layout_gen.cpp.o.d"
  "/root/repo/src/fab/layout_io.cpp" "src/CMakeFiles/cbs_fab.dir/fab/layout_io.cpp.o" "gcc" "src/CMakeFiles/cbs_fab.dir/fab/layout_io.cpp.o.d"
  "/root/repo/src/fab/montecarlo.cpp" "src/CMakeFiles/cbs_fab.dir/fab/montecarlo.cpp.o" "gcc" "src/CMakeFiles/cbs_fab.dir/fab/montecarlo.cpp.o.d"
  "/root/repo/src/fab/ruledeck.cpp" "src/CMakeFiles/cbs_fab.dir/fab/ruledeck.cpp.o" "gcc" "src/CMakeFiles/cbs_fab.dir/fab/ruledeck.cpp.o.d"
  "/root/repo/src/fab/wafer.cpp" "src/CMakeFiles/cbs_fab.dir/fab/wafer.cpp.o" "gcc" "src/CMakeFiles/cbs_fab.dir/fab/wafer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cbs_mech.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cbs_phys.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cbs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
