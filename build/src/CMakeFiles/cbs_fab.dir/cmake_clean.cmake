file(REMOVE_RECURSE
  "CMakeFiles/cbs_fab.dir/fab/drc.cpp.o"
  "CMakeFiles/cbs_fab.dir/fab/drc.cpp.o.d"
  "CMakeFiles/cbs_fab.dir/fab/etch.cpp.o"
  "CMakeFiles/cbs_fab.dir/fab/etch.cpp.o.d"
  "CMakeFiles/cbs_fab.dir/fab/layer.cpp.o"
  "CMakeFiles/cbs_fab.dir/fab/layer.cpp.o.d"
  "CMakeFiles/cbs_fab.dir/fab/layout.cpp.o"
  "CMakeFiles/cbs_fab.dir/fab/layout.cpp.o.d"
  "CMakeFiles/cbs_fab.dir/fab/layout_gen.cpp.o"
  "CMakeFiles/cbs_fab.dir/fab/layout_gen.cpp.o.d"
  "CMakeFiles/cbs_fab.dir/fab/layout_io.cpp.o"
  "CMakeFiles/cbs_fab.dir/fab/layout_io.cpp.o.d"
  "CMakeFiles/cbs_fab.dir/fab/montecarlo.cpp.o"
  "CMakeFiles/cbs_fab.dir/fab/montecarlo.cpp.o.d"
  "CMakeFiles/cbs_fab.dir/fab/ruledeck.cpp.o"
  "CMakeFiles/cbs_fab.dir/fab/ruledeck.cpp.o.d"
  "CMakeFiles/cbs_fab.dir/fab/wafer.cpp.o"
  "CMakeFiles/cbs_fab.dir/fab/wafer.cpp.o.d"
  "libcbs_fab.a"
  "libcbs_fab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbs_fab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
