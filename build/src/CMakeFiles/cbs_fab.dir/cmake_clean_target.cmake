file(REMOVE_RECURSE
  "libcbs_fab.a"
)
