# Empty compiler generated dependencies file for cbs_baseline.
# This may be replaced when dependencies are built.
