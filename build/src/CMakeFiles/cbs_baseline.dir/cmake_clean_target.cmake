file(REMOVE_RECURSE
  "libcbs_baseline.a"
)
