file(REMOVE_RECURSE
  "CMakeFiles/cbs_baseline.dir/baseline/comparison.cpp.o"
  "CMakeFiles/cbs_baseline.dir/baseline/comparison.cpp.o.d"
  "CMakeFiles/cbs_baseline.dir/baseline/external_readout.cpp.o"
  "CMakeFiles/cbs_baseline.dir/baseline/external_readout.cpp.o.d"
  "CMakeFiles/cbs_baseline.dir/baseline/fluorescence.cpp.o"
  "CMakeFiles/cbs_baseline.dir/baseline/fluorescence.cpp.o.d"
  "libcbs_baseline.a"
  "libcbs_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbs_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
