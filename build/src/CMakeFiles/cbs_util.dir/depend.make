# Empty dependencies file for cbs_util.
# This may be replaced when dependencies are built.
