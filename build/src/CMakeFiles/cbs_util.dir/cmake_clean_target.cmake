file(REMOVE_RECURSE
  "libcbs_util.a"
)
