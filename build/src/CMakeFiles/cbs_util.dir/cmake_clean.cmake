file(REMOVE_RECURSE
  "CMakeFiles/cbs_util.dir/util/allan.cpp.o"
  "CMakeFiles/cbs_util.dir/util/allan.cpp.o.d"
  "CMakeFiles/cbs_util.dir/util/dft.cpp.o"
  "CMakeFiles/cbs_util.dir/util/dft.cpp.o.d"
  "CMakeFiles/cbs_util.dir/util/expect.cpp.o"
  "CMakeFiles/cbs_util.dir/util/expect.cpp.o.d"
  "CMakeFiles/cbs_util.dir/util/stats.cpp.o"
  "CMakeFiles/cbs_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/cbs_util.dir/util/table.cpp.o"
  "CMakeFiles/cbs_util.dir/util/table.cpp.o.d"
  "libcbs_util.a"
  "libcbs_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbs_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
