
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circ/adc.cpp" "src/CMakeFiles/cbs_circ.dir/circ/adc.cpp.o" "gcc" "src/CMakeFiles/cbs_circ.dir/circ/adc.cpp.o.d"
  "/root/repo/src/circ/amplifier.cpp" "src/CMakeFiles/cbs_circ.dir/circ/amplifier.cpp.o" "gcc" "src/CMakeFiles/cbs_circ.dir/circ/amplifier.cpp.o.d"
  "/root/repo/src/circ/bridge.cpp" "src/CMakeFiles/cbs_circ.dir/circ/bridge.cpp.o" "gcc" "src/CMakeFiles/cbs_circ.dir/circ/bridge.cpp.o.d"
  "/root/repo/src/circ/chopper.cpp" "src/CMakeFiles/cbs_circ.dir/circ/chopper.cpp.o" "gcc" "src/CMakeFiles/cbs_circ.dir/circ/chopper.cpp.o.d"
  "/root/repo/src/circ/classab.cpp" "src/CMakeFiles/cbs_circ.dir/circ/classab.cpp.o" "gcc" "src/CMakeFiles/cbs_circ.dir/circ/classab.cpp.o.d"
  "/root/repo/src/circ/dda.cpp" "src/CMakeFiles/cbs_circ.dir/circ/dda.cpp.o" "gcc" "src/CMakeFiles/cbs_circ.dir/circ/dda.cpp.o.d"
  "/root/repo/src/circ/filters.cpp" "src/CMakeFiles/cbs_circ.dir/circ/filters.cpp.o" "gcc" "src/CMakeFiles/cbs_circ.dir/circ/filters.cpp.o.d"
  "/root/repo/src/circ/limiter.cpp" "src/CMakeFiles/cbs_circ.dir/circ/limiter.cpp.o" "gcc" "src/CMakeFiles/cbs_circ.dir/circ/limiter.cpp.o.d"
  "/root/repo/src/circ/lorentz.cpp" "src/CMakeFiles/cbs_circ.dir/circ/lorentz.cpp.o" "gcc" "src/CMakeFiles/cbs_circ.dir/circ/lorentz.cpp.o.d"
  "/root/repo/src/circ/mna.cpp" "src/CMakeFiles/cbs_circ.dir/circ/mna.cpp.o" "gcc" "src/CMakeFiles/cbs_circ.dir/circ/mna.cpp.o.d"
  "/root/repo/src/circ/mux.cpp" "src/CMakeFiles/cbs_circ.dir/circ/mux.cpp.o" "gcc" "src/CMakeFiles/cbs_circ.dir/circ/mux.cpp.o.d"
  "/root/repo/src/circ/noise.cpp" "src/CMakeFiles/cbs_circ.dir/circ/noise.cpp.o" "gcc" "src/CMakeFiles/cbs_circ.dir/circ/noise.cpp.o.d"
  "/root/repo/src/circ/offset_comp.cpp" "src/CMakeFiles/cbs_circ.dir/circ/offset_comp.cpp.o" "gcc" "src/CMakeFiles/cbs_circ.dir/circ/offset_comp.cpp.o.d"
  "/root/repo/src/circ/pga.cpp" "src/CMakeFiles/cbs_circ.dir/circ/pga.cpp.o" "gcc" "src/CMakeFiles/cbs_circ.dir/circ/pga.cpp.o.d"
  "/root/repo/src/circ/phase_shifter.cpp" "src/CMakeFiles/cbs_circ.dir/circ/phase_shifter.cpp.o" "gcc" "src/CMakeFiles/cbs_circ.dir/circ/phase_shifter.cpp.o.d"
  "/root/repo/src/circ/vga.cpp" "src/CMakeFiles/cbs_circ.dir/circ/vga.cpp.o" "gcc" "src/CMakeFiles/cbs_circ.dir/circ/vga.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cbs_mech.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cbs_phys.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cbs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
