# Empty compiler generated dependencies file for cbs_circ.
# This may be replaced when dependencies are built.
