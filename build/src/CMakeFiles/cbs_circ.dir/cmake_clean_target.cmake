file(REMOVE_RECURSE
  "libcbs_circ.a"
)
