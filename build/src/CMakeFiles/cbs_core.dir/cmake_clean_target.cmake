file(REMOVE_RECURSE
  "libcbs_core.a"
)
