file(REMOVE_RECURSE
  "CMakeFiles/cbs_core.dir/core/characterization.cpp.o"
  "CMakeFiles/cbs_core.dir/core/characterization.cpp.o.d"
  "CMakeFiles/cbs_core.dir/core/chip.cpp.o"
  "CMakeFiles/cbs_core.dir/core/chip.cpp.o.d"
  "CMakeFiles/cbs_core.dir/core/lod.cpp.o"
  "CMakeFiles/cbs_core.dir/core/lod.cpp.o.d"
  "CMakeFiles/cbs_core.dir/core/resonant_sensor.cpp.o"
  "CMakeFiles/cbs_core.dir/core/resonant_sensor.cpp.o.d"
  "CMakeFiles/cbs_core.dir/core/static_sensor.cpp.o"
  "CMakeFiles/cbs_core.dir/core/static_sensor.cpp.o.d"
  "libcbs_core.a"
  "libcbs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
