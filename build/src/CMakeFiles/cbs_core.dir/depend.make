# Empty dependencies file for cbs_core.
# This may be replaced when dependencies are built.
