file(REMOVE_RECURSE
  "libcbs_sim.a"
)
