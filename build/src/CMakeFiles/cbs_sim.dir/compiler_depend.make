# Empty compiler generated dependencies file for cbs_sim.
# This may be replaced when dependencies are built.
