file(REMOVE_RECURSE
  "CMakeFiles/cbs_sim.dir/sim/engine.cpp.o"
  "CMakeFiles/cbs_sim.dir/sim/engine.cpp.o.d"
  "CMakeFiles/cbs_sim.dir/sim/integrator.cpp.o"
  "CMakeFiles/cbs_sim.dir/sim/integrator.cpp.o.d"
  "CMakeFiles/cbs_sim.dir/sim/trace.cpp.o"
  "CMakeFiles/cbs_sim.dir/sim/trace.cpp.o.d"
  "libcbs_sim.a"
  "libcbs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
