# Empty compiler generated dependencies file for cbs_phys.
# This may be replaced when dependencies are built.
