file(REMOVE_RECURSE
  "CMakeFiles/cbs_phys.dir/phys/fluid.cpp.o"
  "CMakeFiles/cbs_phys.dir/phys/fluid.cpp.o.d"
  "CMakeFiles/cbs_phys.dir/phys/material.cpp.o"
  "CMakeFiles/cbs_phys.dir/phys/material.cpp.o.d"
  "libcbs_phys.a"
  "libcbs_phys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbs_phys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
