file(REMOVE_RECURSE
  "libcbs_phys.a"
)
