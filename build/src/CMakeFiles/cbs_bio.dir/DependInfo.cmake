
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bio/assay.cpp" "src/CMakeFiles/cbs_bio.dir/bio/assay.cpp.o" "gcc" "src/CMakeFiles/cbs_bio.dir/bio/assay.cpp.o.d"
  "/root/repo/src/bio/functionalization.cpp" "src/CMakeFiles/cbs_bio.dir/bio/functionalization.cpp.o" "gcc" "src/CMakeFiles/cbs_bio.dir/bio/functionalization.cpp.o.d"
  "/root/repo/src/bio/langmuir.cpp" "src/CMakeFiles/cbs_bio.dir/bio/langmuir.cpp.o" "gcc" "src/CMakeFiles/cbs_bio.dir/bio/langmuir.cpp.o.d"
  "/root/repo/src/bio/species.cpp" "src/CMakeFiles/cbs_bio.dir/bio/species.cpp.o" "gcc" "src/CMakeFiles/cbs_bio.dir/bio/species.cpp.o.d"
  "/root/repo/src/bio/transport.cpp" "src/CMakeFiles/cbs_bio.dir/bio/transport.cpp.o" "gcc" "src/CMakeFiles/cbs_bio.dir/bio/transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cbs_phys.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cbs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
