# Empty dependencies file for cbs_bio.
# This may be replaced when dependencies are built.
