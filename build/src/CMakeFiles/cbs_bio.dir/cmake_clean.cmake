file(REMOVE_RECURSE
  "CMakeFiles/cbs_bio.dir/bio/assay.cpp.o"
  "CMakeFiles/cbs_bio.dir/bio/assay.cpp.o.d"
  "CMakeFiles/cbs_bio.dir/bio/functionalization.cpp.o"
  "CMakeFiles/cbs_bio.dir/bio/functionalization.cpp.o.d"
  "CMakeFiles/cbs_bio.dir/bio/langmuir.cpp.o"
  "CMakeFiles/cbs_bio.dir/bio/langmuir.cpp.o.d"
  "CMakeFiles/cbs_bio.dir/bio/species.cpp.o"
  "CMakeFiles/cbs_bio.dir/bio/species.cpp.o.d"
  "CMakeFiles/cbs_bio.dir/bio/transport.cpp.o"
  "CMakeFiles/cbs_bio.dir/bio/transport.cpp.o.d"
  "libcbs_bio.a"
  "libcbs_bio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbs_bio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
