file(REMOVE_RECURSE
  "libcbs_bio.a"
)
