file(REMOVE_RECURSE
  "CMakeFiles/cbs_daq.dir/daq/counter.cpp.o"
  "CMakeFiles/cbs_daq.dir/daq/counter.cpp.o.d"
  "CMakeFiles/cbs_daq.dir/daq/lockin.cpp.o"
  "CMakeFiles/cbs_daq.dir/daq/lockin.cpp.o.d"
  "libcbs_daq.a"
  "libcbs_daq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbs_daq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
