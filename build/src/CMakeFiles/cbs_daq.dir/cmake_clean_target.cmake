file(REMOVE_RECURSE
  "libcbs_daq.a"
)
