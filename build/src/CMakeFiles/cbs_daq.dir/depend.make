# Empty dependencies file for cbs_daq.
# This may be replaced when dependencies are built.
