# Empty dependencies file for cbs_mech.
# This may be replaced when dependencies are built.
