file(REMOVE_RECURSE
  "libcbs_mech.a"
)
