
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mech/beam.cpp" "src/CMakeFiles/cbs_mech.dir/mech/beam.cpp.o" "gcc" "src/CMakeFiles/cbs_mech.dir/mech/beam.cpp.o.d"
  "/root/repo/src/mech/geometry.cpp" "src/CMakeFiles/cbs_mech.dir/mech/geometry.cpp.o" "gcc" "src/CMakeFiles/cbs_mech.dir/mech/geometry.cpp.o.d"
  "/root/repo/src/mech/hydrodynamics.cpp" "src/CMakeFiles/cbs_mech.dir/mech/hydrodynamics.cpp.o" "gcc" "src/CMakeFiles/cbs_mech.dir/mech/hydrodynamics.cpp.o.d"
  "/root/repo/src/mech/mass_loading.cpp" "src/CMakeFiles/cbs_mech.dir/mech/mass_loading.cpp.o" "gcc" "src/CMakeFiles/cbs_mech.dir/mech/mass_loading.cpp.o.d"
  "/root/repo/src/mech/piezoresistance.cpp" "src/CMakeFiles/cbs_mech.dir/mech/piezoresistance.cpp.o" "gcc" "src/CMakeFiles/cbs_mech.dir/mech/piezoresistance.cpp.o.d"
  "/root/repo/src/mech/resonator.cpp" "src/CMakeFiles/cbs_mech.dir/mech/resonator.cpp.o" "gcc" "src/CMakeFiles/cbs_mech.dir/mech/resonator.cpp.o.d"
  "/root/repo/src/mech/stoney.cpp" "src/CMakeFiles/cbs_mech.dir/mech/stoney.cpp.o" "gcc" "src/CMakeFiles/cbs_mech.dir/mech/stoney.cpp.o.d"
  "/root/repo/src/mech/thermal_noise.cpp" "src/CMakeFiles/cbs_mech.dir/mech/thermal_noise.cpp.o" "gcc" "src/CMakeFiles/cbs_mech.dir/mech/thermal_noise.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cbs_phys.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cbs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
