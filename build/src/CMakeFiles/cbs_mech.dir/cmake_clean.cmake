file(REMOVE_RECURSE
  "CMakeFiles/cbs_mech.dir/mech/beam.cpp.o"
  "CMakeFiles/cbs_mech.dir/mech/beam.cpp.o.d"
  "CMakeFiles/cbs_mech.dir/mech/geometry.cpp.o"
  "CMakeFiles/cbs_mech.dir/mech/geometry.cpp.o.d"
  "CMakeFiles/cbs_mech.dir/mech/hydrodynamics.cpp.o"
  "CMakeFiles/cbs_mech.dir/mech/hydrodynamics.cpp.o.d"
  "CMakeFiles/cbs_mech.dir/mech/mass_loading.cpp.o"
  "CMakeFiles/cbs_mech.dir/mech/mass_loading.cpp.o.d"
  "CMakeFiles/cbs_mech.dir/mech/piezoresistance.cpp.o"
  "CMakeFiles/cbs_mech.dir/mech/piezoresistance.cpp.o.d"
  "CMakeFiles/cbs_mech.dir/mech/resonator.cpp.o"
  "CMakeFiles/cbs_mech.dir/mech/resonator.cpp.o.d"
  "CMakeFiles/cbs_mech.dir/mech/stoney.cpp.o"
  "CMakeFiles/cbs_mech.dir/mech/stoney.cpp.o.d"
  "CMakeFiles/cbs_mech.dir/mech/thermal_noise.cpp.o"
  "CMakeFiles/cbs_mech.dir/mech/thermal_noise.cpp.o.d"
  "libcbs_mech.a"
  "libcbs_mech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbs_mech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
