# Empty compiler generated dependencies file for example_immunoassay_panel.
# This may be replaced when dependencies are built.
