file(REMOVE_RECURSE
  "CMakeFiles/example_immunoassay_panel.dir/immunoassay_panel.cpp.o"
  "CMakeFiles/example_immunoassay_panel.dir/immunoassay_panel.cpp.o.d"
  "example_immunoassay_panel"
  "example_immunoassay_panel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_immunoassay_panel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
