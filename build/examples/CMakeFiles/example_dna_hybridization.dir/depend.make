# Empty dependencies file for example_dna_hybridization.
# This may be replaced when dependencies are built.
