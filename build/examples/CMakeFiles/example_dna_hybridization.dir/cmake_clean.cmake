file(REMOVE_RECURSE
  "CMakeFiles/example_dna_hybridization.dir/dna_hybridization.cpp.o"
  "CMakeFiles/example_dna_hybridization.dir/dna_hybridization.cpp.o.d"
  "example_dna_hybridization"
  "example_dna_hybridization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_dna_hybridization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
