file(REMOVE_RECURSE
  "CMakeFiles/example_drc_cli.dir/drc_cli.cpp.o"
  "CMakeFiles/example_drc_cli.dir/drc_cli.cpp.o.d"
  "example_drc_cli"
  "example_drc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_drc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
