# Empty compiler generated dependencies file for example_drc_cli.
# This may be replaced when dependencies are built.
