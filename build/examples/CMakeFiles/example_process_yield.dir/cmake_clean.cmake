file(REMOVE_RECURSE
  "CMakeFiles/example_process_yield.dir/process_yield.cpp.o"
  "CMakeFiles/example_process_yield.dir/process_yield.cpp.o.d"
  "example_process_yield"
  "example_process_yield.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_process_yield.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
