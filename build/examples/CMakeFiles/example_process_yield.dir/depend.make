# Empty dependencies file for example_process_yield.
# This may be replaced when dependencies are built.
