# Empty dependencies file for cbs_tests.
# This may be replaced when dependencies are built.
