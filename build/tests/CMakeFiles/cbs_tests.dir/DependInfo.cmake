
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baseline/comparison_test.cpp" "tests/CMakeFiles/cbs_tests.dir/baseline/comparison_test.cpp.o" "gcc" "tests/CMakeFiles/cbs_tests.dir/baseline/comparison_test.cpp.o.d"
  "/root/repo/tests/baseline/fluorescence_test.cpp" "tests/CMakeFiles/cbs_tests.dir/baseline/fluorescence_test.cpp.o" "gcc" "tests/CMakeFiles/cbs_tests.dir/baseline/fluorescence_test.cpp.o.d"
  "/root/repo/tests/bio/assay_test.cpp" "tests/CMakeFiles/cbs_tests.dir/bio/assay_test.cpp.o" "gcc" "tests/CMakeFiles/cbs_tests.dir/bio/assay_test.cpp.o.d"
  "/root/repo/tests/bio/langmuir_properties_test.cpp" "tests/CMakeFiles/cbs_tests.dir/bio/langmuir_properties_test.cpp.o" "gcc" "tests/CMakeFiles/cbs_tests.dir/bio/langmuir_properties_test.cpp.o.d"
  "/root/repo/tests/bio/langmuir_test.cpp" "tests/CMakeFiles/cbs_tests.dir/bio/langmuir_test.cpp.o" "gcc" "tests/CMakeFiles/cbs_tests.dir/bio/langmuir_test.cpp.o.d"
  "/root/repo/tests/bio/transport_test.cpp" "tests/CMakeFiles/cbs_tests.dir/bio/transport_test.cpp.o" "gcc" "tests/CMakeFiles/cbs_tests.dir/bio/transport_test.cpp.o.d"
  "/root/repo/tests/circ/amplifier_test.cpp" "tests/CMakeFiles/cbs_tests.dir/circ/amplifier_test.cpp.o" "gcc" "tests/CMakeFiles/cbs_tests.dir/circ/amplifier_test.cpp.o.d"
  "/root/repo/tests/circ/bridge_properties_test.cpp" "tests/CMakeFiles/cbs_tests.dir/circ/bridge_properties_test.cpp.o" "gcc" "tests/CMakeFiles/cbs_tests.dir/circ/bridge_properties_test.cpp.o.d"
  "/root/repo/tests/circ/bridge_test.cpp" "tests/CMakeFiles/cbs_tests.dir/circ/bridge_test.cpp.o" "gcc" "tests/CMakeFiles/cbs_tests.dir/circ/bridge_test.cpp.o.d"
  "/root/repo/tests/circ/chopper_ripple_test.cpp" "tests/CMakeFiles/cbs_tests.dir/circ/chopper_ripple_test.cpp.o" "gcc" "tests/CMakeFiles/cbs_tests.dir/circ/chopper_ripple_test.cpp.o.d"
  "/root/repo/tests/circ/chopper_test.cpp" "tests/CMakeFiles/cbs_tests.dir/circ/chopper_test.cpp.o" "gcc" "tests/CMakeFiles/cbs_tests.dir/circ/chopper_test.cpp.o.d"
  "/root/repo/tests/circ/filter_properties_test.cpp" "tests/CMakeFiles/cbs_tests.dir/circ/filter_properties_test.cpp.o" "gcc" "tests/CMakeFiles/cbs_tests.dir/circ/filter_properties_test.cpp.o.d"
  "/root/repo/tests/circ/filters_test.cpp" "tests/CMakeFiles/cbs_tests.dir/circ/filters_test.cpp.o" "gcc" "tests/CMakeFiles/cbs_tests.dir/circ/filters_test.cpp.o.d"
  "/root/repo/tests/circ/lorentz_test.cpp" "tests/CMakeFiles/cbs_tests.dir/circ/lorentz_test.cpp.o" "gcc" "tests/CMakeFiles/cbs_tests.dir/circ/lorentz_test.cpp.o.d"
  "/root/repo/tests/circ/mna_test.cpp" "tests/CMakeFiles/cbs_tests.dir/circ/mna_test.cpp.o" "gcc" "tests/CMakeFiles/cbs_tests.dir/circ/mna_test.cpp.o.d"
  "/root/repo/tests/circ/noise_test.cpp" "tests/CMakeFiles/cbs_tests.dir/circ/noise_test.cpp.o" "gcc" "tests/CMakeFiles/cbs_tests.dir/circ/noise_test.cpp.o.d"
  "/root/repo/tests/circ/stages_test.cpp" "tests/CMakeFiles/cbs_tests.dir/circ/stages_test.cpp.o" "gcc" "tests/CMakeFiles/cbs_tests.dir/circ/stages_test.cpp.o.d"
  "/root/repo/tests/core/characterization_test.cpp" "tests/CMakeFiles/cbs_tests.dir/core/characterization_test.cpp.o" "gcc" "tests/CMakeFiles/cbs_tests.dir/core/characterization_test.cpp.o.d"
  "/root/repo/tests/core/integration_test.cpp" "tests/CMakeFiles/cbs_tests.dir/core/integration_test.cpp.o" "gcc" "tests/CMakeFiles/cbs_tests.dir/core/integration_test.cpp.o.d"
  "/root/repo/tests/core/lod_chip_test.cpp" "tests/CMakeFiles/cbs_tests.dir/core/lod_chip_test.cpp.o" "gcc" "tests/CMakeFiles/cbs_tests.dir/core/lod_chip_test.cpp.o.d"
  "/root/repo/tests/core/resonant_sensor_test.cpp" "tests/CMakeFiles/cbs_tests.dir/core/resonant_sensor_test.cpp.o" "gcc" "tests/CMakeFiles/cbs_tests.dir/core/resonant_sensor_test.cpp.o.d"
  "/root/repo/tests/core/static_sensor_test.cpp" "tests/CMakeFiles/cbs_tests.dir/core/static_sensor_test.cpp.o" "gcc" "tests/CMakeFiles/cbs_tests.dir/core/static_sensor_test.cpp.o.d"
  "/root/repo/tests/daq/counter_properties_test.cpp" "tests/CMakeFiles/cbs_tests.dir/daq/counter_properties_test.cpp.o" "gcc" "tests/CMakeFiles/cbs_tests.dir/daq/counter_properties_test.cpp.o.d"
  "/root/repo/tests/daq/counter_test.cpp" "tests/CMakeFiles/cbs_tests.dir/daq/counter_test.cpp.o" "gcc" "tests/CMakeFiles/cbs_tests.dir/daq/counter_test.cpp.o.d"
  "/root/repo/tests/daq/lockin_test.cpp" "tests/CMakeFiles/cbs_tests.dir/daq/lockin_test.cpp.o" "gcc" "tests/CMakeFiles/cbs_tests.dir/daq/lockin_test.cpp.o.d"
  "/root/repo/tests/fab/drc_test.cpp" "tests/CMakeFiles/cbs_tests.dir/fab/drc_test.cpp.o" "gcc" "tests/CMakeFiles/cbs_tests.dir/fab/drc_test.cpp.o.d"
  "/root/repo/tests/fab/etch_test.cpp" "tests/CMakeFiles/cbs_tests.dir/fab/etch_test.cpp.o" "gcc" "tests/CMakeFiles/cbs_tests.dir/fab/etch_test.cpp.o.d"
  "/root/repo/tests/fab/fab_properties_test.cpp" "tests/CMakeFiles/cbs_tests.dir/fab/fab_properties_test.cpp.o" "gcc" "tests/CMakeFiles/cbs_tests.dir/fab/fab_properties_test.cpp.o.d"
  "/root/repo/tests/fab/layout_io_test.cpp" "tests/CMakeFiles/cbs_tests.dir/fab/layout_io_test.cpp.o" "gcc" "tests/CMakeFiles/cbs_tests.dir/fab/layout_io_test.cpp.o.d"
  "/root/repo/tests/fab/layout_test.cpp" "tests/CMakeFiles/cbs_tests.dir/fab/layout_test.cpp.o" "gcc" "tests/CMakeFiles/cbs_tests.dir/fab/layout_test.cpp.o.d"
  "/root/repo/tests/fab/montecarlo_test.cpp" "tests/CMakeFiles/cbs_tests.dir/fab/montecarlo_test.cpp.o" "gcc" "tests/CMakeFiles/cbs_tests.dir/fab/montecarlo_test.cpp.o.d"
  "/root/repo/tests/mech/beam_properties_test.cpp" "tests/CMakeFiles/cbs_tests.dir/mech/beam_properties_test.cpp.o" "gcc" "tests/CMakeFiles/cbs_tests.dir/mech/beam_properties_test.cpp.o.d"
  "/root/repo/tests/mech/beam_test.cpp" "tests/CMakeFiles/cbs_tests.dir/mech/beam_test.cpp.o" "gcc" "tests/CMakeFiles/cbs_tests.dir/mech/beam_test.cpp.o.d"
  "/root/repo/tests/mech/hydro_properties_test.cpp" "tests/CMakeFiles/cbs_tests.dir/mech/hydro_properties_test.cpp.o" "gcc" "tests/CMakeFiles/cbs_tests.dir/mech/hydro_properties_test.cpp.o.d"
  "/root/repo/tests/mech/hydrodynamics_test.cpp" "tests/CMakeFiles/cbs_tests.dir/mech/hydrodynamics_test.cpp.o" "gcc" "tests/CMakeFiles/cbs_tests.dir/mech/hydrodynamics_test.cpp.o.d"
  "/root/repo/tests/mech/mass_loading_test.cpp" "tests/CMakeFiles/cbs_tests.dir/mech/mass_loading_test.cpp.o" "gcc" "tests/CMakeFiles/cbs_tests.dir/mech/mass_loading_test.cpp.o.d"
  "/root/repo/tests/mech/piezoresistance_test.cpp" "tests/CMakeFiles/cbs_tests.dir/mech/piezoresistance_test.cpp.o" "gcc" "tests/CMakeFiles/cbs_tests.dir/mech/piezoresistance_test.cpp.o.d"
  "/root/repo/tests/mech/resonator_properties_test.cpp" "tests/CMakeFiles/cbs_tests.dir/mech/resonator_properties_test.cpp.o" "gcc" "tests/CMakeFiles/cbs_tests.dir/mech/resonator_properties_test.cpp.o.d"
  "/root/repo/tests/mech/resonator_test.cpp" "tests/CMakeFiles/cbs_tests.dir/mech/resonator_test.cpp.o" "gcc" "tests/CMakeFiles/cbs_tests.dir/mech/resonator_test.cpp.o.d"
  "/root/repo/tests/mech/stoney_test.cpp" "tests/CMakeFiles/cbs_tests.dir/mech/stoney_test.cpp.o" "gcc" "tests/CMakeFiles/cbs_tests.dir/mech/stoney_test.cpp.o.d"
  "/root/repo/tests/mech/thermal_noise_test.cpp" "tests/CMakeFiles/cbs_tests.dir/mech/thermal_noise_test.cpp.o" "gcc" "tests/CMakeFiles/cbs_tests.dir/mech/thermal_noise_test.cpp.o.d"
  "/root/repo/tests/phys/material_test.cpp" "tests/CMakeFiles/cbs_tests.dir/phys/material_test.cpp.o" "gcc" "tests/CMakeFiles/cbs_tests.dir/phys/material_test.cpp.o.d"
  "/root/repo/tests/sim/engine_test.cpp" "tests/CMakeFiles/cbs_tests.dir/sim/engine_test.cpp.o" "gcc" "tests/CMakeFiles/cbs_tests.dir/sim/engine_test.cpp.o.d"
  "/root/repo/tests/sim/integrator_test.cpp" "tests/CMakeFiles/cbs_tests.dir/sim/integrator_test.cpp.o" "gcc" "tests/CMakeFiles/cbs_tests.dir/sim/integrator_test.cpp.o.d"
  "/root/repo/tests/util/allan_test.cpp" "tests/CMakeFiles/cbs_tests.dir/util/allan_test.cpp.o" "gcc" "tests/CMakeFiles/cbs_tests.dir/util/allan_test.cpp.o.d"
  "/root/repo/tests/util/dft_test.cpp" "tests/CMakeFiles/cbs_tests.dir/util/dft_test.cpp.o" "gcc" "tests/CMakeFiles/cbs_tests.dir/util/dft_test.cpp.o.d"
  "/root/repo/tests/util/expect_test.cpp" "tests/CMakeFiles/cbs_tests.dir/util/expect_test.cpp.o" "gcc" "tests/CMakeFiles/cbs_tests.dir/util/expect_test.cpp.o.d"
  "/root/repo/tests/util/random_test.cpp" "tests/CMakeFiles/cbs_tests.dir/util/random_test.cpp.o" "gcc" "tests/CMakeFiles/cbs_tests.dir/util/random_test.cpp.o.d"
  "/root/repo/tests/util/stats_test.cpp" "tests/CMakeFiles/cbs_tests.dir/util/stats_test.cpp.o" "gcc" "tests/CMakeFiles/cbs_tests.dir/util/stats_test.cpp.o.d"
  "/root/repo/tests/util/table_test.cpp" "tests/CMakeFiles/cbs_tests.dir/util/table_test.cpp.o" "gcc" "tests/CMakeFiles/cbs_tests.dir/util/table_test.cpp.o.d"
  "/root/repo/tests/util/units_test.cpp" "tests/CMakeFiles/cbs_tests.dir/util/units_test.cpp.o" "gcc" "tests/CMakeFiles/cbs_tests.dir/util/units_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cbs_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cbs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cbs_fab.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cbs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cbs_bio.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cbs_daq.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cbs_circ.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cbs_mech.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cbs_phys.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cbs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
