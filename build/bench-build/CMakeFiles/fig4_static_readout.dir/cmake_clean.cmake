file(REMOVE_RECURSE
  "../bench/fig4_static_readout"
  "../bench/fig4_static_readout.pdb"
  "CMakeFiles/fig4_static_readout.dir/fig4_static_readout.cpp.o"
  "CMakeFiles/fig4_static_readout.dir/fig4_static_readout.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_static_readout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
