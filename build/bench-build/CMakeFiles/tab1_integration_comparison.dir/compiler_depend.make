# Empty compiler generated dependencies file for tab1_integration_comparison.
# This may be replaced when dependencies are built.
