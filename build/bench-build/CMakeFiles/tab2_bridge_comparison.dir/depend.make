# Empty dependencies file for tab2_bridge_comparison.
# This may be replaced when dependencies are built.
