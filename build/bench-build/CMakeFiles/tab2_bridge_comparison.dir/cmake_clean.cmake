file(REMOVE_RECURSE
  "../bench/tab2_bridge_comparison"
  "../bench/tab2_bridge_comparison.pdb"
  "CMakeFiles/tab2_bridge_comparison.dir/tab2_bridge_comparison.cpp.o"
  "CMakeFiles/tab2_bridge_comparison.dir/tab2_bridge_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab2_bridge_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
