file(REMOVE_RECURSE
  "../bench/fig2_resonant_shift"
  "../bench/fig2_resonant_shift.pdb"
  "CMakeFiles/fig2_resonant_shift.dir/fig2_resonant_shift.cpp.o"
  "CMakeFiles/fig2_resonant_shift.dir/fig2_resonant_shift.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_resonant_shift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
