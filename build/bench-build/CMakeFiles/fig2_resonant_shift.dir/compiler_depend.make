# Empty compiler generated dependencies file for fig2_resonant_shift.
# This may be replaced when dependencies are built.
