file(REMOVE_RECURSE
  "../bench/abl3_loop_gain"
  "../bench/abl3_loop_gain.pdb"
  "CMakeFiles/abl3_loop_gain.dir/abl3_loop_gain.cpp.o"
  "CMakeFiles/abl3_loop_gain.dir/abl3_loop_gain.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl3_loop_gain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
