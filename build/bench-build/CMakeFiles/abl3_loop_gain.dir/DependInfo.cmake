
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/abl3_loop_gain.cpp" "bench-build/CMakeFiles/abl3_loop_gain.dir/abl3_loop_gain.cpp.o" "gcc" "bench-build/CMakeFiles/abl3_loop_gain.dir/abl3_loop_gain.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cbs_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cbs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cbs_fab.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cbs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cbs_bio.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cbs_daq.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cbs_circ.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cbs_mech.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cbs_phys.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cbs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
