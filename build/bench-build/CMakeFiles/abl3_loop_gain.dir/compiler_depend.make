# Empty compiler generated dependencies file for abl3_loop_gain.
# This may be replaced when dependencies are built.
