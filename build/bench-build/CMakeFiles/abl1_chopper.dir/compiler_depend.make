# Empty compiler generated dependencies file for abl1_chopper.
# This may be replaced when dependencies are built.
