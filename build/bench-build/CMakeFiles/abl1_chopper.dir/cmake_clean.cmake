file(REMOVE_RECURSE
  "../bench/abl1_chopper"
  "../bench/abl1_chopper.pdb"
  "CMakeFiles/abl1_chopper.dir/abl1_chopper.cpp.o"
  "CMakeFiles/abl1_chopper.dir/abl1_chopper.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl1_chopper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
