file(REMOVE_RECURSE
  "../bench/fig3_fabrication"
  "../bench/fig3_fabrication.pdb"
  "CMakeFiles/fig3_fabrication.dir/fig3_fabrication.cpp.o"
  "CMakeFiles/fig3_fabrication.dir/fig3_fabrication.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_fabrication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
