# Empty compiler generated dependencies file for fig3_fabrication.
# This may be replaced when dependencies are built.
