file(REMOVE_RECURSE
  "../bench/tab3_assay_comparison"
  "../bench/tab3_assay_comparison.pdb"
  "CMakeFiles/tab3_assay_comparison.dir/tab3_assay_comparison.cpp.o"
  "CMakeFiles/tab3_assay_comparison.dir/tab3_assay_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab3_assay_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
