# Empty dependencies file for tab3_assay_comparison.
# This may be replaced when dependencies are built.
