file(REMOVE_RECURSE
  "../bench/fig5_resonant_loop"
  "../bench/fig5_resonant_loop.pdb"
  "CMakeFiles/fig5_resonant_loop.dir/fig5_resonant_loop.cpp.o"
  "CMakeFiles/fig5_resonant_loop.dir/fig5_resonant_loop.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_resonant_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
