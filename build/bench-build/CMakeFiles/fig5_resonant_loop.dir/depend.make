# Empty dependencies file for fig5_resonant_loop.
# This may be replaced when dependencies are built.
