# Empty compiler generated dependencies file for fig1_static_bending.
# This may be replaced when dependencies are built.
