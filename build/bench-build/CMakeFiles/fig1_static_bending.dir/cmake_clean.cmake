file(REMOVE_RECURSE
  "../bench/fig1_static_bending"
  "../bench/fig1_static_bending.pdb"
  "CMakeFiles/fig1_static_bending.dir/fig1_static_bending.cpp.o"
  "CMakeFiles/fig1_static_bending.dir/fig1_static_bending.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_static_bending.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
