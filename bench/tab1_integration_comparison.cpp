// T1 — the abstract's claim, quantified: "The monolithic integrated
// readout allows for a high signal-to-noise ratio, lowers the sensitivity
// to external interference and enables autonomous device operation."
//
// The same bridge signal (a 10 uV dose, i.e. ~6.8 mN/m of surface stress)
// is read by (i) the on-chip chopper chain and (ii) an off-chip discrete
// amplifier over bond wires and a cable.
#include <iostream>

#include "baseline/comparison.hpp"
#include "core/chip.hpp"
#include "util/table.hpp"
#include "obs/obs.hpp"

int main() {
    const cbs::obs::BenchSession obs_session("tab1_integration_comparison");
    using namespace cbs;
    using namespace cbs::baseline;

    Rng rng(42);
    const auto rows = compare_readout_chains(Voltage{10e-6}, Time{1.0}, rng);

    ConsoleTable t({"readout chain", "signal [mV]", "reading noise [uV]", "mains pickup [uV]",
                    "offset [mV]", "SNR [dB]"});
    CsvWriter csv("tab1_integration.csv",
                  {"chain", "signal_mv", "noise_uv", "mains_uv", "offset_mv", "snr_db"});
    for (const auto& r : rows) {
        t.add_row({r.chain, ConsoleTable::num(r.signal_v * 1e3, 3),
                   ConsoleTable::num(r.noise_v_rms * 1e6, 3),
                   ConsoleTable::num(r.mains_v_rms * 1e6, 3),
                   ConsoleTable::num(r.offset_v * 1e3, 3), ConsoleTable::num(r.snr_db, 3)});
        csv.write_row(std::vector<std::string>{
            r.chain, std::to_string(r.signal_v * 1e3), std::to_string(r.noise_v_rms * 1e6),
            std::to_string(r.mains_v_rms * 1e6), std::to_string(r.offset_v * 1e3),
            std::to_string(r.snr_db)});
    }
    std::cout << t.str("T1 — monolithic vs external readout (10 uV bridge dose, 1 s window)")
              << '\n';

    const double snr_gain = rows[0].snr_db - rows[1].snr_db;
    const double pickup_ratio = rows[1].mains_v_rms / rows[0].mains_v_rms;
    std::cout << "SNR advantage of integration: " << ConsoleTable::num(snr_gain, 3)
              << " dB; interference suppression: " << ConsoleTable::num(pickup_ratio, 3)
              << "x\n\n";

    // "Autonomous device operation": the chip's power budget fits a battery.
    const core::BiosensorChip chip(core::StaticSensorConfig{}, core::ResonantSensorConfig{},
                                   Rng(7));
    const auto b = chip.budget();
    ConsoleTable p({"block", "power [mW]"});
    p.add_row({"static system (bridge + chopper chain)",
               ConsoleTable::num(b.static_system_power.value() * 1e3, 3)});
    p.add_row({"resonant system (MOS bridge + loop + buffer)",
               ConsoleTable::num(b.resonant_system_power.value() * 1e3, 3)});
    p.add_row({"total", ConsoleTable::num(b.total_power.value() * 1e3, 3)});
    std::cout << p.str("T1' — power budget (chip area "
                       + ConsoleTable::num(b.chip_area.value() * 1e6, 3) + " mm^2)");
    return 0;
}
