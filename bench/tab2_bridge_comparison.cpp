// T2 — section 3.2's claim, quantified: "the piezoresistive Wheatstone
// bridge has been accomplished by p-channel MOS transistors biased in the
// linear region, which has the advantage of a higher resistivity and lower
// power consumption compared to diffusion-type silicon resistors."
//
// Both bridges at the same 5 V bias, same gauge excitation (dR/R = 1e-4,
// a ~30 nm resonant tip amplitude), measured in a 1 kHz band around the
// 318 kHz carrier and, for contrast, at baseband.
#include <iostream>

#include "baseline/comparison.hpp"
#include "util/constants.hpp"
#include "util/table.hpp"
#include "obs/obs.hpp"

int main() {
    const cbs::obs::BenchSession obs_session("tab2_bridge_comparison");
    using namespace cbs;
    using namespace cbs::baseline;

    const auto rows =
        compare_bridges(1e-4, Frequency{318e3}, Frequency{1e3}, constants::T_room);

    ConsoleTable t({"bridge", "R arm", "I supply", "power", "en [nV/rtHz]", "1/f corner",
                    "SNR@f0 [dB]", "SNR@DC [dB]"});
    CsvWriter csv("tab2_bridges.csv",
                  {"bridge", "r_ohm", "i_a", "p_w", "en_nv", "fc_hz", "snr_f0_db",
                   "snr_dc_db"});
    for (const auto& r : rows) {
        t.add_row({r.bridge, ConsoleTable::si(r.arm_resistance_ohm, 3, "Ohm"),
                   ConsoleTable::si(r.supply_current_a, 3, "A"),
                   ConsoleTable::si(r.power_w, 3, "W"),
                   ConsoleTable::num(r.thermal_noise_nv_rthz, 3),
                   ConsoleTable::si(r.flicker_corner_hz, 3, "Hz"),
                   ConsoleTable::num(r.snr_db_at_resonance, 3),
                   ConsoleTable::num(r.snr_db_at_dc, 3)});
        csv.write_row(std::vector<std::string>{
            r.bridge, std::to_string(r.arm_resistance_ohm), std::to_string(r.supply_current_a),
            std::to_string(r.power_w), std::to_string(r.thermal_noise_nv_rthz),
            std::to_string(r.flicker_corner_hz), std::to_string(r.snr_db_at_resonance),
            std::to_string(r.snr_db_at_dc)});
    }
    std::cout << t.str("T2 — diffused-resistor vs PMOS-triode Wheatstone bridge (Vb = 5 V, "
                       "dR/R = 1e-4)")
              << '\n';
    std::cout << "Power advantage of the MOS bridge: "
              << ConsoleTable::num(rows[0].power_w / rows[1].power_w, 3)
              << "x lower; its high 1/f corner is harmless at the resonant carrier\n"
              << "(SNR@f0 within "
              << ConsoleTable::num(rows[0].snr_db_at_resonance - rows[1].snr_db_at_resonance, 2)
              << " dB of the diffused bridge) but costly at DC — which is exactly why the\n"
              << "paper uses it for the *resonant* system and adds high-pass filters in the "
                 "loop.\n";
    return 0;
}
