// Figure 1 reproduction: "Bending of a static microcantilever due to
// analyte binding."
//
// Regenerates the quantitative content behind the figure:
//   (a) tip deflection / curvature / bridge output vs differential surface
//       stress (the transduction curve),
//   (b) the analyte dose-response: equilibrium coverage -> stress ->
//       deflection -> bridge voltage across 1 pM .. 1 uM,
//   (c) a binding sensorgram (deflection vs time) for a 100 nM sample.
#include <iostream>

#include "bio/assay.hpp"
#include "circ/bridge.hpp"
#include "mech/piezoresistance.hpp"
#include "mech/stoney.hpp"
#include "util/table.hpp"
#include "obs/obs.hpp"

int main() {
    const cbs::obs::BenchSession obs_session("fig1_static_bending");
    using namespace cbs;
    using namespace cbs::literals;

    const auto geom = mech::static_default();
    const mech::StoneyModel stoney(geom);
    const mech::PiezoResistor gauge(geom.material, mech::ResistorOrientation::longitudinal,
                                    mech::ResistorPlacement::distributed);
    circ::DiffusedBridge bridge;

    std::cout << "Device: " << geom.length.value() * 1e6 << " x " << geom.width.value() * 1e6
              << " x " << geom.thickness.value() * 1e6 << " um static cantilever, "
              << "responsivity " << ConsoleTable::si(stoney.responsivity().value(), 3, "m/(N/m)")
              << "\n\n";

    // (a) Transduction curve.
    {
        ConsoleTable t({"dSigma [mN/m]", "tip defl [nm]", "curvature [1/m]", "dR/R [ppm]",
                        "bridge out [uV]"});
        CsvWriter csv("fig1a_transduction.csv",
                      {"dsigma_mN_per_m", "deflection_nm", "curvature_per_m", "drr_ppm",
                       "bridge_uV"});
        for (double s_mn : {0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0}) {
            const SurfaceStress s{s_mn * 1e-3};
            const double defl_nm = stoney.tip_deflection(s).value() * 1e9;
            const double kappa = stoney.curvature(s).value();
            const double drr = gauge.relative_change_surface_stress(stoney, s);
            bridge.set_sense_delta(drr);
            const double out_uv = bridge.output().value() * 1e6;
            t.add_row({ConsoleTable::num(s_mn), ConsoleTable::num(defl_nm, 3),
                       ConsoleTable::num(kappa, 3), ConsoleTable::num(drr * 1e6, 3),
                       ConsoleTable::num(out_uv, 3)});
            csv.write_row(std::vector<double>{s_mn, defl_nm, kappa, drr * 1e6, out_uv});
        }
        std::cout << t.str("Fig.1a — surface stress -> bending -> bridge output") << '\n';
    }

    // (b) Dose-response at equilibrium.
    {
        const auto coating = bio::antibody_coating(bio::library::igg_antigen());
        const bio::LangmuirKinetics kinetics(coating.target);
        ConsoleTable t({"conc", "theta_eq", "stress [mN/m]", "deflection [nm]",
                        "bridge out [uV]"});
        CsvWriter csv("fig1b_dose_response.csv",
                      {"conc_molar", "theta_eq", "stress_mN_per_m", "deflection_nm",
                       "bridge_uV"});
        for (double c_nm : {0.001, 0.01, 0.1, 1.0, 3.0, 10.0, 30.0, 100.0, 1000.0}) {
            const MolarConcentration c{c_nm * 1e-6};
            const double theta = kinetics.equilibrium_coverage(c);
            const auto stress = coating.surface_stress(theta);
            const double defl_nm = stoney.tip_deflection(stress).value() * 1e9;
            bridge.set_sense_delta(gauge.relative_change_surface_stress(stoney, stress));
            const double out_uv = bridge.output().value() * 1e6;
            t.add_row({ConsoleTable::si(c_nm * 1e-9, 3, "M"), ConsoleTable::num(theta, 4),
                       ConsoleTable::num(stress.value() * 1e3, 3),
                       ConsoleTable::num(defl_nm, 3), ConsoleTable::num(out_uv, 3)});
            csv.write_row(std::vector<double>{c_nm * 1e-9, theta, stress.value() * 1e3,
                                              defl_nm, out_uv});
        }
        std::cout << t.str("Fig.1b — dose response (IgG antigen, Kd = 10 nM)") << '\n';
    }

    // (c) Binding sensorgram at 100 nM.
    {
        const auto coating = bio::antibody_coating(bio::library::igg_antigen());
        const bio::AssayRunner runner(coating, geom.plan_area());
        const auto protocol = bio::AssayProtocol::standard(100.0_nM, 120.0_s, 900.0_s, 600.0_s);
        const auto gram = runner.run(protocol, 10.0_s);
        ConsoleTable t({"t [s]", "phase", "coverage", "deflection [nm]"});
        CsvWriter csv("fig1c_sensorgram.csv", {"t_s", "coverage", "deflection_nm"});
        for (const auto& p : gram) {
            const auto defl =
                stoney.tip_deflection(SurfaceStress{p.surface_stress_n_per_m}).value() * 1e9;
            csv.write_row(std::vector<double>{p.time_s, p.coverage, defl});
            if (static_cast<long>(p.time_s) % 180 == 0) {
                const char* phase = p.time_s <= 120.0      ? "baseline"
                                    : p.time_s <= 1020.0   ? "association"
                                                           : "dissociation";
                t.add_row({ConsoleTable::num(p.time_s, 5), phase,
                           ConsoleTable::num(p.coverage, 4), ConsoleTable::num(defl, 4)});
            }
        }
        std::cout << t.str("Fig.1c — sensorgram, 100 nM injection (full series in CSV)");
    }
    return 0;
}
