// T3 — the introduction's claim, quantified: "for the increasing number of
// biochemical analyze procedures in the daily healthcare ... a fast,
// easy-to-use and cheaper alternative to fluorescent methods is desired."
//
// The cantilever LoD is *measured* from the simulated static system
// (baseline reading noise x 3 sigma referred through the chain and the
// Langmuir isotherm); the fluorescence workflow comes from the baseline
// model. Die cost comes from the wafer-level yield simulation.
#include <iostream>

#include "baseline/comparison.hpp"
#include "core/static_sensor.hpp"
#include "fab/wafer.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "obs/obs.hpp"

int main() {
    const cbs::obs::BenchSession obs_session("tab3_assay_comparison");
    using namespace cbs;
    using namespace cbs::baseline;
    using namespace cbs::literals;

    // Measure the cantilever system's LoD from baseline noise.
    core::StaticCantileverSystem sys(core::StaticSensorConfig{}, Rng(3));
    sys.calibrate_offsets();
    std::vector<double> readings;
    for (int i = 0; i < 40; ++i) {
        const double v = sys.read_channel(0).output.value();
        if (i >= 2) readings.push_back(v);  // discard settle readings
    }
    const double noise_v = stats::stddev(readings);
    const double stress_res = 3.0 * noise_v / sys.stress_responsivity().value();
    const double theta_lod = stress_res / sys.coating(0).stress_at_full_coverage.value();
    const double kd = sys.coating(0).target.dissociation_constant().value();
    const MolarConcentration lod{kd * theta_lod / (1.0 - std::min(theta_lod, 0.999))};
    std::cout << "measured cantilever baseline noise: "
              << ConsoleTable::num(noise_v * 1e6, 3) << " uV -> stress resolution "
              << ConsoleTable::num(stress_res * 1e6, 3) << " uN/m -> LoD "
              << ConsoleTable::num(lod.value() / 1e-6, 3) << " nM\n";

    // Die cost from the wafer simulation.
    const fab::ProcessMonteCarlo mc(mech::resonant_default(), fab::KohEtchConfig{},
                                    fab::ProcessVariation{},
                                    fab::EtchMode::electrochemical_stop);
    const fab::WaferMap wafer(fab::WaferConfig{}, mc);
    Rng rng(11);
    const auto yield = wafer.summarize(wafer.fabricate(rng), 0.05);
    CantileverAssayEconomics econ;
    econ.die_cost_usd = yield.cost_per_good_die_usd;
    std::cout << "die cost from wafer yield (" << yield.good << "/" << yield.dies
              << " good): " << ConsoleTable::num(econ.die_cost_usd, 3) << " USD\n\n";

    const FluorescenceAssay fluo(FluorescenceConfig{}, bio::library::igg_antigen(),
                                 bio::library::antibody_layer());
    const auto rows = compare_assays(econ, lod, fluo);

    ConsoleTable t({"method", "time-to-result [min]", "operator steps", "cost/test [USD]",
                    "LoD [nM]", "label-free"});
    CsvWriter csv("tab3_assays.csv",
                  {"method", "time_min", "steps", "cost_usd", "lod_nm", "label_free"});
    for (const auto& r : rows) {
        t.add_row({r.method, ConsoleTable::num(r.time_to_result_min, 3),
                   std::to_string(r.operator_steps), ConsoleTable::num(r.cost_per_test_usd, 3),
                   ConsoleTable::num(r.lod_nanomolar, 3), r.label_free ? "yes" : "no"});
        csv.write_row(std::vector<std::string>{
            r.method, std::to_string(r.time_to_result_min), std::to_string(r.operator_steps),
            std::to_string(r.cost_per_test_usd), std::to_string(r.lod_nanomolar),
            r.label_free ? "1" : "0"});
    }
    std::cout << t.str("T3 — CMOS cantilever immunoassay vs fluorescence workflow") << '\n'
              << "The cantilever trades some detection limit for a ~4x faster, ~3x fewer-step,\n"
              << "~10x cheaper, label-free test — the intro's argument, with numbers.\n";
    return 0;
}
