// Figure 5 reproduction: "Block diagram of the feedback circuitry for
// resonant cantilever systems" — the Lorentz-force oscillator in operation:
//
//   (a) startup from thermomechanical noise: counter gates vs time,
//   (b) the VGA's job: loop gain / required gain / amplitude across media
//       ("adjust to different mechanical damping ... due to different
//       liquids"),
//   (c) counter architecture: gated vs reciprocal resolution per gate time,
//   (d) frequency stability: Allan deviation of the counter stream.
#include <cmath>
#include <iostream>

#include "core/resonant_sensor.hpp"
#include "util/allan.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "obs/obs.hpp"

int main() {
    const cbs::obs::BenchSession obs_session("fig5_resonant_loop");
    using namespace cbs;
    using namespace cbs::core;
    using namespace cbs::literals;

    // (a) Startup transient.
    {
        ResonantSensorConfig cfg;
        cfg.counter_gate = Time{0.05};
        ResonantCantileverSystem s(cfg, Rng(1));
        const auto ms = s.run(0.5_s);
        ConsoleTable t({"gate end [s]", "f measured [Hz]", "edges"});
        CsvWriter csv("fig5a_startup.csv", {"t_s", "f_hz", "edges"});
        for (const auto& m : ms) {
            t.add_row({ConsoleTable::num(m.gate_end, 3), ConsoleTable::num(m.frequency_hz, 8),
                       std::to_string(m.edges)});
            csv.write_row(std::vector<double>{m.gate_end, m.frequency_hz,
                                              static_cast<double>(m.edges)});
        }
        std::cout << "expected loaded resonance: "
                  << ConsoleTable::num(s.expected_resonance().value(), 8) << " Hz, amplitude "
                  << ConsoleTable::si(s.oscillation_amplitude().value(), 3, "m") << "\n"
                  << t.str("Fig.5a — oscillation startup from thermal noise (air)") << '\n';
    }

    // (b) Media sweep: the VGA compensates damping.
    {
        ConsoleTable t({"medium", "Q loaded", "req. VGA gain", "VGA ctl", "f measured [kHz]",
                        "f expected [kHz]", "amplitude [nm]"});
        CsvWriter csv("fig5b_media.csv",
                      {"q", "vga_gain", "vga_ctl", "f_meas_khz", "f_exp_khz", "amp_nm"});
        for (const auto* fluid : {&phys::fluids::air(), &phys::fluids::nitrogen(),
                                  &phys::fluids::water(), &phys::fluids::pbs(),
                                  &phys::fluids::serum()}) {
            ResonantSensorConfig cfg;
            cfg.fluid = *fluid;
            ResonantCantileverSystem s(cfg, Rng(2));
            const auto ms = s.run(0.4_s);
            const double f =
                ms.size() >= 2
                    ? 0.5 * (ms[ms.size() - 1].frequency_hz + ms[ms.size() - 2].frequency_hz)
                    : (ms.empty() ? 0.0 : ms.back().frequency_hz);
            t.add_row({fluid->name, ConsoleTable::num(s.loaded_q(), 4),
                       ConsoleTable::num(s.required_vga_gain(), 3),
                       ConsoleTable::num(s.vga_control(), 3),
                       ConsoleTable::num(f / 1e3, 6),
                       ConsoleTable::num(s.expected_resonance().value() / 1e3, 6),
                       ConsoleTable::num(s.oscillation_amplitude().value() * 1e9, 3)});
            csv.write_row(std::vector<double>{s.loaded_q(), s.required_vga_gain(),
                                              s.vga_control(), f / 1e3,
                                              s.expected_resonance().value() / 1e3,
                                              s.oscillation_amplitude().value() * 1e9});
        }
        std::cout << t.str("Fig.5b — VGA vs damping across media") << '\n';
    }

    // (c) Counter architectures (on the live loop signal).
    {
        ConsoleTable t({"gate [s]", "gated worst-case [Hz]", "reciprocal scatter [Hz]"});
        CsvWriter csv("fig5c_counters.csv", {"gate_s", "gated_res_hz", "recip_sigma_hz"});
        for (double gate : {0.01, 0.05, 0.2}) {
            ResonantSensorConfig cfg;
            cfg.counter_gate = Time{gate};
            ResonantCantileverSystem s(cfg, Rng(3));
            auto ms = s.run(Time{std::max(0.5, 8.0 * gate)});
            // Drop startup gates.
            if (ms.size() > 3) ms.erase(ms.begin(), ms.begin() + 3);
            std::vector<double> freqs;
            for (const auto& m : ms) freqs.push_back(m.frequency_hz);
            const double scatter = freqs.size() >= 2 ? stats::stddev(freqs) : 0.0;
            t.add_row({ConsoleTable::num(gate), ConsoleTable::num(1.0 / gate, 3),
                       ConsoleTable::num(scatter, 3)});
            csv.write_row(std::vector<double>{gate, 1.0 / gate, scatter});
        }
        std::cout << t.str("Fig.5c — gated (+-1 count) vs reciprocal counting") << '\n';
    }

    // (d) Allan deviation of the counter stream.
    {
        ResonantSensorConfig cfg;
        cfg.counter_gate = Time{0.05};
        ResonantCantileverSystem s(cfg, Rng(4));
        auto ms = s.run(2.0_s);
        ms.erase(ms.begin(), ms.begin() + 4);  // startup
        std::vector<double> f;
        for (const auto& m : ms) f.push_back(m.frequency_hz);
        const auto adev = allan_deviation(f, 0.05);
        ConsoleTable t({"tau [s]", "Allan dev [Hz]", "fractional"});
        CsvWriter csv("fig5d_allan.csv", {"tau_s", "adev_hz", "fractional"});
        for (const auto& p : adev) {
            t.add_row({ConsoleTable::num(p.tau), ConsoleTable::num(p.adev, 3),
                       ConsoleTable::num(p.adev / 318e3, 3)});
            csv.write_row(std::vector<double>{p.tau, p.adev, p.adev / 318e3});
        }
        std::cout << t.str("Fig.5d — frequency stability (Allan deviation, air)");
    }
    return 0;
}
