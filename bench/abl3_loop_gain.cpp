// Ablation A3 — loop-gain target and limiter level: how the two knobs of
// the Figure-5 loop trade startup time, amplitude and frequency pulling.
// A loop-gain target barely above 1 starts slowly; a large target starts
// fast but drives the limiter deeper (more harmonic content). The limiter
// level directly sets the oscillation amplitude (and thus the bridge SNR).
#include <cmath>
#include <iostream>

#include "core/resonant_sensor.hpp"
#include "util/table.hpp"
#include "obs/obs.hpp"

namespace {

using namespace cbs;
using namespace cbs::core;

struct LoopResult {
    double first_lock_s = -1.0;  ///< end of the first gate with a sane reading
    double f_err_hz = 0.0;       ///< steady frequency minus expected
    double amplitude_nm = 0.0;
};

LoopResult run_loop(double gain_target, double limiter_mv) {
    ResonantSensorConfig cfg;
    cfg.loop_gain_target = gain_target;
    cfg.limiter_level = Voltage{limiter_mv * 1e-3};
    cfg.counter_gate = Time{0.05};
    ResonantCantileverSystem s(cfg, Rng(9));
    const auto ms = s.run(Time{0.6});
    LoopResult r;
    const double f_exp = s.expected_resonance().value();
    for (const auto& m : ms) {
        if (std::fabs(m.frequency_hz - f_exp) < 0.01 * f_exp) {
            r.first_lock_s = m.gate_end;
            break;
        }
    }
    if (ms.size() >= 2) {
        const double f =
            0.5 * (ms[ms.size() - 1].frequency_hz + ms[ms.size() - 2].frequency_hz);
        r.f_err_hz = f - f_exp;
    }
    r.amplitude_nm = s.oscillation_amplitude().value() * 1e9;
    return r;
}

}  // namespace

int main() {
    const cbs::obs::BenchSession obs_session("abl3_loop_gain");
    {
        ConsoleTable t({"loop gain target", "first lock [s]", "freq pulling [Hz]",
                        "amplitude [nm]"});
        CsvWriter csv("abl3_gain.csv", {"gain", "lock_s", "pull_hz", "amp_nm"});
        for (double g : {1.3, 2.0, 4.0, 8.0, 16.0}) {
            const auto r = run_loop(g, 15.0);
            t.add_row({ConsoleTable::num(g), ConsoleTable::num(r.first_lock_s, 3),
                       ConsoleTable::num(r.f_err_hz, 3),
                       ConsoleTable::num(r.amplitude_nm, 3)});
            csv.write_row(std::vector<double>{g, r.first_lock_s, r.f_err_hz, r.amplitude_nm});
        }
        std::cout << t.str("A3a — loop-gain target (limiter 15 mV, air)") << '\n'
                  << "(first lock = -1: the loop never started — near-unity gain targets\n"
                  << " leave the startup signal below the class-AB crossover dead-zone, a\n"
                  << " real failure mode of marginally-designed oscillator loops)\n\n";
    }
    {
        ConsoleTable t({"limiter level [mV]", "amplitude [nm]", "freq pulling [Hz]"});
        CsvWriter csv("abl3_limiter.csv", {"limit_mv", "amp_nm", "pull_hz"});
        for (double lv : {5.0, 10.0, 15.0, 30.0, 60.0}) {
            const auto r = run_loop(4.0, lv);
            t.add_row({ConsoleTable::num(lv), ConsoleTable::num(r.amplitude_nm, 3),
                       ConsoleTable::num(r.f_err_hz, 3)});
            csv.write_row(std::vector<double>{lv, r.amplitude_nm, r.f_err_hz});
        }
        std::cout << t.str("A3b — limiter level sets the regulated amplitude");
    }
    return 0;
}
