// Performance microbenchmarks (google-benchmark): throughput of the
// simulation kernels that dominate the figure benches.
#include <benchmark/benchmark.h>

#include <cmath>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "array/grid.hpp"
#include "array/scan.hpp"
#include "circ/block.hpp"
#include "circ/chopper.hpp"
#include "circ/filters.hpp"
#include "circ/fuse.hpp"
#include "circ/noise.hpp"
#include "core/resonant_sensor.hpp"
#include "core/static_sensor.hpp"
#include "daq/counter.hpp"
#include "sim/batch.hpp"
#include "exec/threadpool.hpp"
#include "fab/drc.hpp"
#include "fab/layout_gen.hpp"
#include "fab/montecarlo.hpp"
#include "fab/ruledeck.hpp"
#include "mech/resonator.hpp"
#include "obs/obs.hpp"
#include "sim/integrator.hpp"
#include "surrogate/tier.hpp"
#include "util/dft.hpp"
#include "util/random.hpp"

namespace {

using namespace cbs;

void BM_ResonatorStepExact(benchmark::State& state) {
    mech::ResonatorParams p;
    p.omega0 = AngularFrequency{2e6};
    p.q = 300.0;
    p.effective_mass = Mass{1.8e-11};
    mech::ModalResonator r(p);
    r.set_state(Length{1e-9}, Velocity{0.0});
    const Time dt{1e-7};
    for (auto _ : state) {
        r.step_exact(Force{1e-9}, dt);
        benchmark::DoNotOptimize(r.displacement());
    }
}
BENCHMARK(BM_ResonatorStepExact);

void BM_Rk4Step(benchmark::State& state) {
    sim::Rk4Integrator integ(
        [](double, std::span<const double> y, std::span<double> d) {
            d[0] = y[1];
            d[1] = -4e12 * y[0] - 6e3 * y[1];
        },
        {1e-9, 0.0});
    for (auto _ : state) {
        integ.step(1e-7);
        benchmark::DoNotOptimize(integ.state(0));
    }
}
BENCHMARK(BM_Rk4Step);

void BM_ChopperSample(benchmark::State& state) {
    circ::ChopperConfig cfg;
    cfg.amplifier.gain = 100.0;
    cfg.amplifier.bandwidth = Frequency{50e3};
    cfg.amplifier.white_noise = VoltageNoiseDensity{15e-9};
    cfg.amplifier.flicker_corner = Frequency{5e3};
    circ::ChopperAmplifier amp(cfg, 200e3, Rng(1));
    for (auto _ : state) benchmark::DoNotOptimize(amp.process(1e-6));
}
BENCHMARK(BM_ChopperSample);

void BM_ResonantLoopTick(benchmark::State& state) {
    core::ResonantCantileverSystem sensor(core::ResonantSensorConfig{}, Rng(2));
    // One tick = run for one sample period.
    const Time dt{1.0 / sensor.sample_rate()};
    for (auto _ : state) {
        (void)sensor.run(dt);
    }
}
BENCHMARK(BM_ResonantLoopTick);

void BM_CounterFeed(benchmark::State& state) {
    daq::ReciprocalCounter counter(Time{0.1});
    double t = 0.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(counter.feed(t, std::sin(2e6 * t)));
        t += 1e-7;
    }
}
BENCHMARK(BM_CounterFeed);

void BM_DrcFullCell(benchmark::State& state) {
    const auto cell = fab::CantileverCellGenerator(mech::resonant_default()).generate();
    const fab::DrcEngine engine(fab::default_rule_deck());
    for (auto _ : state) benchmark::DoNotOptimize(engine.check(cell));
}
BENCHMARK(BM_DrcFullCell);

void BM_Fft4096(benchmark::State& state) {
    Rng rng(3);
    std::vector<std::complex<double>> x(4096);
    for (auto& c : x) c = {rng.normal(), 0.0};
    for (auto _ : state) {
        auto y = x;
        fft(y);
        benchmark::DoNotOptimize(y[1]);
    }
}
BENCHMARK(BM_Fft4096);

// --- Observability overhead ------------------------------------------------
//
// The acceptance bar for the obs layer: with CBS_OBS=off the instrumented
// hot paths must stay within 5% of their uninstrumented throughput. Compare
// the Off/Summary variants of the same kernel to see what opting in costs.

/// Temporarily forces the observability level for one benchmark.
class ObsLevelGuard {
public:
    explicit ObsLevelGuard(obs::Level l) : prev_(obs::level()) { obs::set_level(l); }
    ~ObsLevelGuard() { obs::set_level(prev_); }

private:
    obs::Level prev_;
};

void BM_ObsCounterAdd_Off(benchmark::State& state) {
    const ObsLevelGuard guard(obs::Level::off);
    auto* c = obs::MetricsRegistry::instance().counter("bench.counter");
    for (auto _ : state) {
        c->add();
        benchmark::DoNotOptimize(c);
    }
}
BENCHMARK(BM_ObsCounterAdd_Off);

void BM_ObsCounterAdd_Summary(benchmark::State& state) {
    const ObsLevelGuard guard(obs::Level::summary);
    auto* c = obs::MetricsRegistry::instance().counter("bench.counter");
    for (auto _ : state) {
        c->add();
        benchmark::DoNotOptimize(c);
    }
}
BENCHMARK(BM_ObsCounterAdd_Summary);

void BM_ObsHistogramObserve_Summary(benchmark::State& state) {
    const ObsLevelGuard guard(obs::Level::summary);
    auto* h = obs::MetricsRegistry::instance().histogram("bench.histogram");
    double v = 50.0;
    for (auto _ : state) {
        h->observe(v);
        v = v < 1e8 ? v * 1.1 : 50.0;
        benchmark::DoNotOptimize(h);
    }
}
BENCHMARK(BM_ObsHistogramObserve_Summary);

void BM_ChopperSample_ObsOff(benchmark::State& state) {
    const ObsLevelGuard guard(obs::Level::off);
    circ::ChopperConfig cfg;
    cfg.amplifier.gain = 100.0;
    cfg.amplifier.bandwidth = Frequency{50e3};
    cfg.amplifier.white_noise = VoltageNoiseDensity{15e-9};
    cfg.amplifier.flicker_corner = Frequency{5e3};
    circ::ChopperAmplifier amp(cfg, 200e3, Rng(1));
    for (auto _ : state) benchmark::DoNotOptimize(amp.process(1e-6));
}
BENCHMARK(BM_ChopperSample_ObsOff);

void BM_ChopperSample_ObsSummary(benchmark::State& state) {
    const ObsLevelGuard guard(obs::Level::summary);
    circ::ChopperConfig cfg;
    cfg.amplifier.gain = 100.0;
    cfg.amplifier.bandwidth = Frequency{50e3};
    cfg.amplifier.white_noise = VoltageNoiseDensity{15e-9};
    cfg.amplifier.flicker_corner = Frequency{5e3};
    circ::ChopperAmplifier amp(cfg, 200e3, Rng(1));
    for (auto _ : state) benchmark::DoNotOptimize(amp.process(1e-6));
}
BENCHMARK(BM_ChopperSample_ObsSummary);

// 64 loop ticks per run() call — the short end of realistic usage (fig
// benches run millions of ticks per call), so the per-run span/counter
// cost is amortized the way it is in practice. Compare Off vs Summary
// per-item times for the instrumentation overhead.
void BM_ResonantLoopRun64_ObsOff(benchmark::State& state) {
    const ObsLevelGuard guard(obs::Level::off);
    core::ResonantCantileverSystem sensor(core::ResonantSensorConfig{}, Rng(2));
    const Time dt{64.0 / sensor.sample_rate()};
    for (auto _ : state) {
        (void)sensor.run(dt);
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_ResonantLoopRun64_ObsOff);

void BM_ResonantLoopRun64_ObsSummary(benchmark::State& state) {
    const ObsLevelGuard guard(obs::Level::summary);
    core::ResonantCantileverSystem sensor(core::ResonantSensorConfig{}, Rng(2));
    const Time dt{64.0 / sensor.sample_rate()};
    for (auto _ : state) {
        (void)sensor.run(dt);
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_ResonantLoopRun64_ObsSummary);

// --- Probe overhead ----------------------------------------------------------
//
// Paired rows for the signal-probe tap cost on the static read chain
// (bridge / chopper / adc taps, 600 samples per read):
//   Off          — CBS_OBS=off: taps must be free (acceptance: <=1%).
//   AttachedIdle — probes registered at the tap sites but not armed: the
//                  per-tap cost is one relaxed atomic load (soft bar: <=5%
//                  vs Off; CI's bench diff reads these rows).
//   Recording    — probes armed: full streaming-stats + ring + waveform.

/// Temporarily forces the probe arming spec for one benchmark.
class ProbeSpecGuard {
public:
    explicit ProbeSpecGuard(std::string spec)
        : prev_(obs::ProbeRegistry::instance().spec()) {
        obs::ProbeRegistry::instance().set_spec(std::move(spec));
    }
    ~ProbeSpecGuard() { obs::ProbeRegistry::instance().set_spec(prev_); }

private:
    std::string prev_;
};

void BM_ProbeOverheadStaticChain_Off(benchmark::State& state) {
    const ObsLevelGuard guard(obs::Level::off);
    const ProbeSpecGuard spec("");
    core::StaticSensorConfig cfg;
    cfg.probe_scope = "bench.probe.off";
    core::StaticCantileverSystem sensor(cfg, Rng(7));
    for (auto _ : state) {
        benchmark::DoNotOptimize(sensor.read_channel(0, Time{1e-3}, Time{2e-3}));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * 600));
}
BENCHMARK(BM_ProbeOverheadStaticChain_Off)->Unit(benchmark::kMicrosecond);

void BM_ProbeOverheadStaticChain_AttachedIdle(benchmark::State& state) {
    const ObsLevelGuard guard(obs::Level::summary);
    const ProbeSpecGuard spec("");  // probes exist, none armed
    core::StaticSensorConfig cfg;
    cfg.probe_scope = "bench.probe.idle";
    core::StaticCantileverSystem sensor(cfg, Rng(7));
    for (auto _ : state) {
        benchmark::DoNotOptimize(sensor.read_channel(0, Time{1e-3}, Time{2e-3}));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * 600));
}
BENCHMARK(BM_ProbeOverheadStaticChain_AttachedIdle)->Unit(benchmark::kMicrosecond);

void BM_ProbeOverheadStaticChain_Recording(benchmark::State& state) {
    const ObsLevelGuard guard(obs::Level::summary);
    const ProbeSpecGuard spec("bench.probe.rec.*");
    core::StaticSensorConfig cfg;
    cfg.probe_scope = "bench.probe.rec";
    core::StaticCantileverSystem sensor(cfg, Rng(7));
    for (auto _ : state) {
        benchmark::DoNotOptimize(sensor.read_channel(0, Time{1e-3}, Time{2e-3}));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * 600));
}
BENCHMARK(BM_ProbeOverheadStaticChain_Recording)->Unit(benchmark::kMicrosecond);

// --- Telemetry overhead ------------------------------------------------------
//
// Paired rows for the continuous-telemetry cost on the resonant loop, both
// at CBS_OBS=summary so the delta isolates telemetry itself:
//   Off      — CBS_OBS_TELEMETRY unset (the default): the freq-series push
//              is one relaxed load per gated measurement, maybe_sample one
//              relaxed load per batch.
//   Sampling — a 10 ms cadence into a JSONL sink: windowed Welford + EWMA +
//              streaming Allan per measurement, plus record emission.
// Acceptance bar: Sampling within 5% of Off (measurements arrive per
// 0.1 s gate, so even full telemetry touches ~1 sample per 100k ticks);
// CI hard-gates both rows against BENCH_baseline.json via cbs-obs-diff
// --only BM_TelemetryOverhead.

/// Temporarily configures telemetry (interval + throwaway sink) for one
/// benchmark; restores the disabled default and clears collected state.
class TelemetryGuard {
public:
    explicit TelemetryGuard(double interval_s) {
        auto& t = obs::Telemetry::instance();
        t.configure(interval_s);
        if (interval_s >= 0.0) {
            t.set_sink(obs::out_dir() + "/bench_telemetry_scratch.jsonl");
        }
        t.reset();
    }
    ~TelemetryGuard() {
        auto& t = obs::Telemetry::instance();
        t.reset();
        t.configure(-1.0);
        t.set_sink("");  // next activation re-derives the default sink
    }
};

void BM_TelemetryOverheadOff(benchmark::State& state) {
    const ObsLevelGuard obs_guard(obs::Level::summary);
    const TelemetryGuard telemetry(-1.0);
    core::ResonantCantileverSystem sensor(core::ResonantSensorConfig{}, Rng(2));
    constexpr std::size_t kTicks = 4096;
    const Time window{static_cast<double>(kTicks) / sensor.sample_rate()};
    for (auto _ : state) {
        (void)sensor.run(window);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kTicks));
}
BENCHMARK(BM_TelemetryOverheadOff)->Unit(benchmark::kMicrosecond);

void BM_TelemetryOverheadSampling(benchmark::State& state) {
    const ObsLevelGuard obs_guard(obs::Level::summary);
    const TelemetryGuard telemetry(0.01);
    core::ResonantCantileverSystem sensor(core::ResonantSensorConfig{}, Rng(2));
    constexpr std::size_t kTicks = 4096;
    const Time window{static_cast<double>(kTicks) / sensor.sample_rate()};
    for (auto _ : state) {
        (void)sensor.run(window);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kTicks));
}
BENCHMARK(BM_TelemetryOverheadSampling)->Unit(benchmark::kMicrosecond);

// --- Batched signal path ----------------------------------------------------
//
// Paired per-sample vs batched timings for the three hot paths of the
// batched refactor (DESIGN.md §9). Arg is the batch size: Arg(1) is the
// legacy per-sample path, Arg(64)/Arg(1024) the batched path. Results are
// bit-identical across all of them (asserted by the equivalence tests);
// these rows show what batching buys. items/s = samples/s for cross-row
// comparison; the recorded pairs live in BENCH_signalpath.json.

/// Temporarily forces the batch size for one benchmark.
class BatchSizeGuard {
public:
    explicit BatchSizeGuard(std::size_t n) { sim::set_batch_size(n); }
    ~BatchSizeGuard() { sim::set_batch_size(0); }
};

void BM_SignalPathResonantLoop(benchmark::State& state) {
    const BatchSizeGuard guard(static_cast<std::size_t>(state.range(0)));
    core::ResonantCantileverSystem sensor(core::ResonantSensorConfig{}, Rng(2));
    constexpr std::size_t kTicks = 4096;
    const Time window{static_cast<double>(kTicks) / sensor.sample_rate()};
    for (auto _ : state) {
        (void)sensor.run(window);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kTicks));
}
BENCHMARK(BM_SignalPathResonantLoop)->Arg(1)->Arg(64)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

/// Temporarily forces the fuse mode for one benchmark (the compiled-form
/// SIMD tier, DESIGN.md Â§11); pairs with the unfused row above it in
/// BENCH_signalpath.json.
class FuseModeBenchGuard {
public:
    explicit FuseModeBenchGuard(circ::FuseMode m) { circ::set_fuse_mode(m); }
    ~FuseModeBenchGuard() { circ::clear_fuse_mode(); }
};

void BM_SignalPathResonantLoopFused(benchmark::State& state) {
    const FuseModeBenchGuard fuse(circ::FuseMode::simd);
    const BatchSizeGuard guard(static_cast<std::size_t>(state.range(0)));
    core::ResonantCantileverSystem sensor(core::ResonantSensorConfig{}, Rng(2));
    constexpr std::size_t kTicks = 4096;
    const Time window{static_cast<double>(kTicks) / sensor.sample_rate()};
    for (auto _ : state) {
        (void)sensor.run(window);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kTicks));
}
BENCHMARK(BM_SignalPathResonantLoopFused)->Arg(1)->Arg(64)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

void BM_SignalPathStaticChain(benchmark::State& state) {
    const BatchSizeGuard guard(static_cast<std::size_t>(state.range(0)));
    core::StaticCantileverSystem sensor(core::StaticSensorConfig{}, Rng(7));
    // 1 ms settle + 2 ms integrate at 200 kHz = 600 chain samples per read.
    constexpr std::size_t kSamplesPerRead = 600;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sensor.read_channel(0, Time{1e-3}, Time{2e-3}));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kSamplesPerRead));
}
BENCHMARK(BM_SignalPathStaticChain)->Arg(1)->Arg(64)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

void BM_SignalPathStaticChainFused(benchmark::State& state) {
    const FuseModeBenchGuard fuse(circ::FuseMode::simd);
    const BatchSizeGuard guard(static_cast<std::size_t>(state.range(0)));
    core::StaticCantileverSystem sensor(core::StaticSensorConfig{}, Rng(7));
    constexpr std::size_t kSamplesPerRead = 600;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sensor.read_channel(0, Time{1e-3}, Time{2e-3}));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kSamplesPerRead));
}
BENCHMARK(BM_SignalPathStaticChainFused)->Arg(64)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

void BM_SignalPathChain16(benchmark::State& state) {
    // A 16-block mixed chain: per-sample traversal pays 16 virtual calls
    // per sample; batched traversal pays 16 per batch.
    const auto batch = static_cast<std::size_t>(state.range(0));
    circ::Chain chain;
    for (int group = 0; group < 4; ++group) {
        chain.emplace<circ::GainBlock>(1.01);
        chain.emplace<circ::OnePoleLowPass>(Frequency{20e3}, 200e3);
        chain.emplace<circ::Biquad>(circ::Biquad::Type::lowpass, Frequency{40e3}, 0.707, 200e3);
        chain.emplace<circ::WhiteNoise>(VoltageNoiseDensity{10e-9}, 200e3,
                                        Rng(100 + static_cast<std::uint64_t>(group)));
    }
    std::vector<double> buffer(4096);
    for (std::size_t i = 0; i < buffer.size(); ++i) {
        buffer[i] = 1e-3 * std::sin(static_cast<double>(i) * 0.05);
    }
    std::vector<double> scratch(buffer.size());
    for (auto _ : state) {
        scratch = buffer;
        if (batch == 1) {
            for (double& v : scratch) v = chain.process(v);
        } else {
            const std::span<double> span(scratch);
            for (std::size_t i = 0; i < scratch.size(); i += batch) {
                chain.process_block(span.subspan(i, std::min(batch, scratch.size() - i)));
            }
        }
        benchmark::DoNotOptimize(scratch.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * buffer.size()));
}
BENCHMARK(BM_SignalPathChain16)->Arg(1)->Arg(64)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

void BM_SignalPathChain16Fused(benchmark::State& state) {
    const FuseModeBenchGuard fuse(circ::FuseMode::simd);
    const auto batch = static_cast<std::size_t>(state.range(0));
    circ::Chain chain;
    for (int group = 0; group < 4; ++group) {
        chain.emplace<circ::GainBlock>(1.01);
        chain.emplace<circ::OnePoleLowPass>(Frequency{20e3}, 200e3);
        chain.emplace<circ::Biquad>(circ::Biquad::Type::lowpass, Frequency{40e3}, 0.707, 200e3);
        chain.emplace<circ::WhiteNoise>(VoltageNoiseDensity{10e-9}, 200e3,
                                        Rng(100 + static_cast<std::uint64_t>(group)));
    }
    std::vector<double> buffer(4096);
    for (std::size_t i = 0; i < buffer.size(); ++i) {
        buffer[i] = 1e-3 * std::sin(static_cast<double>(i) * 0.05);
    }
    std::vector<double> scratch(buffer.size());
    for (auto _ : state) {
        scratch = buffer;
        const std::span<double> span(scratch);
        for (std::size_t i = 0; i < scratch.size(); i += batch) {
            chain.process_block(span.subspan(i, std::min(batch, scratch.size() - i)));
        }
        benchmark::DoNotOptimize(scratch.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * buffer.size()));
}
BENCHMARK(BM_SignalPathChain16Fused)->Arg(64)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

// --- Array scan --------------------------------------------------------------
//
// Shared-readout scan of an N-site ArrayGrid (DESIGN.md §12). Args are
// {sites, pool threads}: threads == 0 is the serial in-thread reference,
// threads == 4 shards the row scans over a ThreadPool. Results are
// bit-identical across the pairs (asserted by tests/array); the paired
// rows show what the row sharding buys at 64 / 1024 / 10000 sites.
// items/s = sites/s. The fused rows run the same scan through the
// CBS_FUSE=simd chain tier.

void run_array_scan_bench(benchmark::State& state) {
    const auto sites = static_cast<std::size_t>(state.range(0));
    const auto threads = static_cast<std::size_t>(state.range(1));
    const auto side = static_cast<std::size_t>(std::llround(std::sqrt(static_cast<double>(sites))));
    const fab::ProcessMonteCarlo mc(mech::resonant_default(), fab::KohEtchConfig{},
                                    fab::ProcessVariation{},
                                    fab::EtchMode::electrochemical_stop);
    array::ArrayConfig gcfg;
    gcfg.rows = side;
    gcfg.cols = side;
    gcfg.seed = 17;
    gcfg.reference_columns = {side - 1};
    array::ArrayGrid grid(gcfg, mc, nullptr);
    grid.set_concentration(MolarConcentration{1e-8});
    grid.advance_binding(Time{60.0});
    array::ScanConfig cfg;
    cfg.noise_density = VoltageNoiseDensity{20e-9};
    cfg.neighbor_coupling = 0.02;
    cfg.log_scan = false;
    const array::ScanController controller(grid, cfg);
    std::unique_ptr<exec::ThreadPool> pool;
    if (threads > 0) pool = std::make_unique<exec::ThreadPool>(threads);
    for (auto _ : state) {
        benchmark::DoNotOptimize(controller.scan(pool.get()));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * grid.site_count()));
}

void BM_ArrayScan(benchmark::State& state) { run_array_scan_bench(state); }
BENCHMARK(BM_ArrayScan)
    ->Args({64, 0})->Args({64, 4})
    ->Args({1024, 0})->Args({1024, 4})
    ->Args({10000, 0})->Args({10000, 4})
    ->Unit(benchmark::kMillisecond);

void BM_ArrayScanFused(benchmark::State& state) {
    const FuseModeBenchGuard fuse(circ::FuseMode::simd);
    run_array_scan_bench(state);
}
BENCHMARK(BM_ArrayScanFused)
    ->Args({64, 0})->Args({64, 4})
    ->Args({1024, 0})->Args({1024, 4})
    ->Args({10000, 0})->Args({10000, 4})
    ->Unit(benchmark::kMillisecond);

// --- Deterministic parallel execution ---------------------------------------
//
// Paired serial-vs-parallel Monte-Carlo timings. Arg(0) is the serial
// in-thread reference (no pool); Arg(k) shards the same seeded workload
// over a k-worker ThreadPool. Results are bit-identical across all of
// them (asserted by tests/exec); these rows show what the parallelism
// buys in wall time. items/s = trials/s for cross-row comparison.
void BM_MonteCarloRun(benchmark::State& state) {
    const auto threads = static_cast<std::size_t>(state.range(0));
    const fab::ProcessMonteCarlo mc(mech::resonant_default(), fab::KohEtchConfig{},
                                    fab::ProcessVariation{},
                                    fab::EtchMode::electrochemical_stop);
    std::unique_ptr<exec::ThreadPool> pool;
    if (threads > 0) pool = std::make_unique<exec::ThreadPool>(threads);
    constexpr std::size_t kTrials = 4096;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mc.run_seeded(kTrials, 42, 0.05, pool.get()));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kTrials));
}
BENCHMARK(BM_MonteCarloRun)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Paired row: the same study through the CBS_SURROGATE fast path. The fit
// is primed once before the timing loop (the cache amortizes it across a
// real study's millions of trials), so the row measures steady-state
// surrogate evaluation; compare against BM_MonteCarloRun at equal Arg.
void BM_MonteCarloSurrogate(benchmark::State& state) {
    struct SurrogateTierGuard {
        SurrogateTierGuard() { surrogate::set_tier(surrogate::Tier::on); }
        ~SurrogateTierGuard() { surrogate::clear_tier(); }
    } guard;
    const auto threads = static_cast<std::size_t>(state.range(0));
    const fab::ProcessMonteCarlo mc(mech::resonant_default(), fab::KohEtchConfig{},
                                    fab::ProcessVariation{},
                                    fab::EtchMode::electrochemical_stop);
    std::unique_ptr<exec::ThreadPool> pool;
    if (threads > 0) pool = std::make_unique<exec::ThreadPool>(threads);
    constexpr std::size_t kTrials = 4096;
    benchmark::DoNotOptimize(mc.run_seeded(kTrials, 42, 0.05, pool.get()));  // warm fit
    for (auto _ : state) {
        benchmark::DoNotOptimize(mc.run_seeded(kTrials, 42, 0.05, pool.get()));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kTrials));
}
BENCHMARK(BM_MonteCarloSurrogate)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

// BENCHMARK_MAIN plus a BenchSession, so `CBS_OBS=summary` also prints the
// metrics run report (exec per-worker task counts, pool utilization, mc.*
// counters) after the google-benchmark table.
int main(int argc, char** argv) {
    const cbs::obs::BenchSession session("perf_microbench");
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
