// Figure 4 reproduction: "Block diagram of the readout circuit for static
// cantilever operation" — the multiplexed 4-channel chopper chain, in
// operation:
//
//   (a) the signal chain and its gain line-up,
//   (b) per-channel offsets before/after the programmable compensation,
//   (c) multiplexed 4-channel acquisition with three functionalized
//       channels + blocked reference at a 30 nM dose,
//   (d) in-band noise and surface-stress resolution with the chopper ON
//       vs OFF (the claim the first stage exists for).
#include <cmath>
#include <iostream>

#include "core/static_sensor.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "obs/obs.hpp"

int main() {
    const cbs::obs::BenchSession obs_session("fig4_static_readout");
    using namespace cbs;
    using namespace cbs::core;
    using namespace cbs::literals;

    StaticSensorConfig cfg;
    StaticCantileverSystem sys(cfg, Rng(2026));

    // (a) Gain line-up.
    {
        ConsoleTable t({"stage", "gain", "note"});
        t.add_row({"analog mux (4:1)", "1", "RC settling + crosstalk"});
        t.add_row({"chopper amplifier", ConsoleTable::num(cfg.chopper.amplifier.gain, 3),
                   "f_chop 10 kHz, ripple boxcar"});
        t.add_row({"low-pass filter", "1", "200 Hz"});
        t.add_row({"offset compensation", "1",
                   "+-" + ConsoleTable::num(cfg.offset_range.value(), 3) + " V, " +
                       std::to_string(cfg.offset_bits) + " bit"});
        t.add_row({"gain stage 1", "20", "programmable"});
        t.add_row({"gain stage 2", "5", "programmable"});
        t.add_row({"total", ConsoleTable::num(sys.chain_gain(), 4),
                   ConsoleTable::num(sys.stress_responsivity().value(), 3) + " V/(N/m)"});
        std::cout << t.str("Fig.4a — chain line-up") << '\n';
    }

    // (b) Offset compensation.
    {
        ConsoleTable t({"channel", "offset before [mV]", "offset after [mV]"});
        CsvWriter csv("fig4b_offsets.csv", {"channel", "before_mv", "after_mv"});
        std::array<double, 4> before{};
        for (std::size_t ch = 0; ch < 4; ++ch) {
            before[ch] = sys.read_channel(ch).output.value();
        }
        sys.calibrate_offsets();
        for (std::size_t ch = 0; ch < 4; ++ch) {
            const double after = sys.read_channel(ch).output.value();
            t.add_row({std::to_string(ch), ConsoleTable::num(before[ch] * 1e3, 4),
                       ConsoleTable::num(after * 1e3, 3)});
            csv.write_row(std::vector<double>{static_cast<double>(ch), before[ch] * 1e3,
                                              after * 1e3});
        }
        std::cout << t.str("Fig.4b — programmable offset compensation (raw chain offsets)")
                  << '\n';
    }

    // (c) Multiplexed acquisition at a 30 nM dose.
    {
        sys.set_coating(1, bio::antibody_coating(bio::library::psa()));
        sys.set_coating(2, bio::antibody_coating(bio::library::crp()));
        sys.set_concentration(30.0_nM);
        for (int i = 0; i < 60; ++i) sys.advance_binding(60.0_s);
        ConsoleTable t({"channel", "coating", "coverage", "Vout [mV]", "stress [mN/m]"});
        CsvWriter csv("fig4c_channels.csv", {"channel", "coverage", "vout_mv", "stress_mn"});
        for (std::size_t ch = 0; ch < 4; ++ch) {
            const auto r = sys.read_channel(ch);
            t.add_row({std::to_string(ch), sys.coating(ch).target.name,
                       ConsoleTable::num(sys.coverage(ch), 3),
                       ConsoleTable::num(r.output.value() * 1e3, 4),
                       ConsoleTable::num(r.stress.value() * 1e3, 3)});
            csv.write_row(std::vector<double>{static_cast<double>(ch), sys.coverage(ch),
                                              r.output.value() * 1e3, r.stress.value() * 1e3});
        }
        std::cout << t.str("Fig.4c — multiplexed array, 60 min at 30 nM (ch3 = reference)")
                  << '\n';
    }

    // (d) Chopper ON vs OFF noise (fresh systems, clean baseline).
    {
        ConsoleTable t({"chopper", "reading noise [uV rms]", "stress resolution [uN/m]",
                        "equiv. LoD [nM]"});
        CsvWriter csv("fig4d_chopper_noise.csv",
                      {"chopper_on", "noise_uv", "stress_res_un_per_m", "lod_nm"});
        for (bool on : {true, false}) {
            auto c = cfg;
            c.chopper.enabled = on;
            StaticCantileverSystem s(c, Rng(55));
            s.calibrate_offsets();
            std::vector<double> readings;
            for (int i = 0; i < 32; ++i) {
                const double v = s.read_channel(0).output.value();
                if (i >= 2) readings.push_back(v);  // discard settle readings
            }
            const double noise = stats::stddev(readings);
            const double stress_res = 3.0 * noise / sys.stress_responsivity().value();
            // theta at LoD: stress_res / stress(theta=1); conc via Langmuir.
            const double theta = stress_res / 5e-3;
            const double lod_nm = 10.0 * theta / (1.0 - std::min(theta, 0.999));  // Kd 10 nM
            t.add_row({on ? "ON" : "OFF", ConsoleTable::num(noise * 1e6, 3),
                       ConsoleTable::num(stress_res * 1e6, 3), ConsoleTable::num(lod_nm, 3)});
            csv.write_row(std::vector<double>{on ? 1.0 : 0.0, noise * 1e6, stress_res * 1e6,
                                              lod_nm});
        }
        std::cout << t.str("Fig.4d — chopper stabilization: reading noise & 3-sigma LoD");
    }
    return 0;
}
