// Figure 3 reproduction: "Schematic view of the cantilever structure,
// before and after post-processing" — the fabrication story, quantified:
//
//   (a) KOH back-side etch front vs time up to the electrochemical stop,
//   (b) thickness / resonance statistics: electrochemical etch-stop vs a
//       timed etch (the A2 ablation) over 2000 Monte-Carlo wafers,
//   (c) the two-step front-side release etch plan,
//   (d) design verification: the generated sensor cell against the combined
//       CMOS + MEMS rule deck, and wafer-level yield / cost.
#include <iostream>

#include "fab/drc.hpp"
#include "fab/etch.hpp"
#include "fab/layout_gen.hpp"
#include "fab/montecarlo.hpp"
#include "fab/ruledeck.hpp"
#include "fab/wafer.hpp"
#include "util/table.hpp"
#include "obs/obs.hpp"

int main() {
    const cbs::obs::BenchSession obs_session("fig3_fabrication");
    using namespace cbs;
    using namespace cbs::fab;

    const KohEtchSimulator etcher;
    std::cout << "KOH bath: 90 C, 30 wt% -> rate "
              << ConsoleTable::num(etcher.nominal_rate().value() * 60e6, 3)
              << " um/min; etch-stop at the n-well junction ("
              << etcher.config().stack.nwell_junction_depth.value() * 1e6 << " um)\n\n";

    // (a) Etch-front progress.
    {
        ConsoleTable t({"t [h]", "depth [um]", "remaining Si [um]"});
        CsvWriter csv("fig3a_etch_front.csv", {"t_h", "depth_um", "remaining_um"});
        const double wafer = etcher.config().stack.wafer_thickness.value();
        for (const auto& [t_s, depth] : etcher.front_profile(Time{3600.0})) {
            t.add_row({ConsoleTable::num(t_s / 3600.0, 3), ConsoleTable::num(depth * 1e6, 4),
                       ConsoleTable::num((wafer - depth) * 1e6, 4)});
            csv.write_row(std::vector<double>{t_s / 3600.0, depth * 1e6,
                                              (wafer - depth) * 1e6});
        }
        std::cout << t.str("Fig.3a — back-side KOH etch front (stops on the pn junction)")
                  << '\n';
    }

    // (b) Electrochemical stop vs timed etch.
    {
        ConsoleTable t({"etch mode", "t mean [um]", "t sigma [um]", "f0 mean [kHz]",
                        "f0 sigma [kHz]", "yield @ +-5% f0"});
        CsvWriter csv("fig3b_etchstop_vs_timed.csv",
                      {"mode", "t_mean_um", "t_sigma_um", "f0_mean_khz", "f0_sigma_khz",
                       "yield"});
        for (auto mode : {EtchMode::electrochemical_stop, EtchMode::timed}) {
            const ProcessMonteCarlo mc(mech::resonant_default(), KohEtchConfig{},
                                       ProcessVariation{}, mode);
            Rng rng(7);
            const auto s = mc.run(2000, rng, 0.05);
            const std::string name =
                mode == EtchMode::electrochemical_stop ? "electrochemical stop" : "timed";
            t.add_row({name, ConsoleTable::num(s.thickness_mean_m * 1e6, 4),
                       ConsoleTable::num(s.thickness_sigma_m * 1e6, 3),
                       ConsoleTable::num(s.f0_mean_hz / 1e3, 4),
                       ConsoleTable::num(s.f0_sigma_hz / 1e3, 3),
                       ConsoleTable::num(s.yield, 3)});
            csv.write_row(std::vector<std::string>{
                name, std::to_string(s.thickness_mean_m * 1e6),
                std::to_string(s.thickness_sigma_m * 1e6), std::to_string(s.f0_mean_hz / 1e3),
                std::to_string(s.f0_sigma_hz / 1e3), std::to_string(s.yield)});
        }
        std::cout << t.str(
                         "Fig.3b / A2 — why the electrochemical etch-stop: thickness control "
                         "(2000 devices)")
                  << '\n';
    }

    // (c) Front-side release plan.
    {
        const auto plan = plan_release_etch(StackInfo{}, mech::resonant_default().thickness);
        ConsoleTable t({"step", "removes", "duration [min]"});
        t.add_row({"dry etch 1 (dielectrics)",
                   ConsoleTable::num(StackInfo{}.dielectric_total().value() * 1e6, 3) + " um",
                   ConsoleTable::num(plan.dielectric_step.value() / 60.0, 3)});
        t.add_row({"dry etch 2 (bulk Si)",
                   ConsoleTable::num(mech::resonant_default().thickness.value() * 1e6, 3) +
                       " um",
                   ConsoleTable::num(plan.silicon_step.value() / 60.0, 3)});
        t.add_row({"total", "-", ConsoleTable::num(plan.total().value() / 60.0, 3)});
        std::cout << t.str("Fig.3c — two-step front-side release (anisotropic dry etch)")
                  << '\n';
    }

    // (d) DRC + wafer yield.
    {
        const DrcEngine engine(default_rule_deck());
        ConsoleTable t({"cell", "shapes", "rules", "violations"});
        const auto resonant = CantileverCellGenerator(mech::resonant_default()).generate();
        CantileverCellOptions so;
        so.coil_turns = 0;
        const auto statics =
            CantileverCellGenerator(mech::static_default(), so).generate("static");
        for (const auto* cell : {&resonant, &statics}) {
            t.add_row({cell->name(), std::to_string(cell->shape_count()),
                       std::to_string(engine.rules().size()),
                       std::to_string(engine.check(*cell).size())});
        }
        std::cout << t.str("Fig.3d — design verification in the CMOS flow (combined deck)")
                  << '\n';

        const ProcessMonteCarlo mc(mech::resonant_default(), KohEtchConfig{},
                                   ProcessVariation{}, EtchMode::electrochemical_stop);
        const WaferMap wafer(WaferConfig{}, mc);
        Rng rng(11);
        const auto yield = wafer.summarize(wafer.fabricate(rng), 0.05);
        ConsoleTable w({"dies/wafer", "good dies", "yield", "cost/good die [USD]"});
        w.add_row({std::to_string(yield.dies), std::to_string(yield.good),
                   ConsoleTable::num(yield.yield, 3),
                   ConsoleTable::num(yield.cost_per_good_die_usd, 3)});
        std::cout << w.str("Fig.3d' — wafer-level post-processing economics (100 mm wafer)");
    }
    return 0;
}
