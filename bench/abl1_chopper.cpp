// Ablation A1 — the chopper-stabilization design choice: baseline reading
// noise of the static chain vs chopping frequency, including OFF. The 1/f
// corner of the core amplifier is 5 kHz: chopping below it leaves flicker
// in band, chopping above it reaches the white-noise floor.
#include <iostream>

#include "core/static_sensor.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "obs/obs.hpp"

int main() {
    const cbs::obs::BenchSession obs_session("abl1_chopper");
    using namespace cbs;
    using namespace cbs::core;

    ConsoleTable t({"chopper", "f_chop [kHz]", "reading noise [uV rms]",
                    "stress resolution [uN/m]"});
    CsvWriter csv("abl1_chopper.csv", {"f_chop_hz", "noise_uv", "stress_res"});

    auto measure = [&](bool enabled, double f_chop_hz) {
        StaticSensorConfig cfg;
        cfg.chopper.enabled = enabled;
        if (enabled) {
            cfg.chopper.chop_frequency = Frequency{f_chop_hz};
            // The post-demodulation filter must stay below f_chop/2.
            cfg.chopper.output_cutoff = Frequency{std::min(500.0, f_chop_hz / 4.0)};
        }
        StaticCantileverSystem sys(cfg, Rng(55));
        sys.calibrate_offsets();
        std::vector<double> readings;
        for (int i = 0; i < 30; ++i) {
            const double v = sys.read_channel(0).output.value();
            if (i >= 2) readings.push_back(v);  // discard settle readings
        }
        const double noise = stats::stddev(readings);
        const double res = 3.0 * noise / sys.stress_responsivity().value();
        t.add_row({enabled ? "ON" : "OFF",
                   enabled ? ConsoleTable::num(f_chop_hz / 1e3, 3) : "-",
                   ConsoleTable::num(noise * 1e6, 3), ConsoleTable::num(res * 1e6, 3)});
        csv.write_row(std::vector<double>{enabled ? f_chop_hz : 0.0, noise * 1e6, res * 1e6});
    };

    measure(false, 0.0);
    for (double f : {1e3, 2e3, 5e3, 10e3, 20e3}) measure(true, f);

    std::cout << t.str("A1 — chopper ablation: reading noise vs chop frequency "
                       "(amplifier 1/f corner = 5 kHz)");
    return 0;
}
