// Figure 2 reproduction: "Resonant operation of the microcantilever" —
// added analyte mass shifts the resonance.
//
//   (a) analytic mass-loading curve: df vs added mass for tip and uniform
//       distributions, with the small-signal sensitivity (Hz/pg),
//   (b) closed-loop verification: the full Figure-5 oscillator is run at
//       preset coverages; the counter-measured shift is compared with the
//       analytic model,
//   (c) environment: loaded resonance and Q in vacuum/air/water.
#include <iostream>

#include "core/resonant_sensor.hpp"
#include "mech/hydrodynamics.hpp"
#include "mech/mass_loading.hpp"
#include "util/table.hpp"
#include "obs/obs.hpp"

int main() {
    const cbs::obs::BenchSession obs_session("fig2_resonant_shift");
    using namespace cbs;
    using namespace cbs::literals;

    const mech::EulerBernoulliBeam beam(mech::resonant_default());
    const mech::MassLoadingModel model(beam);

    std::cout << "Device: f0 = " << ConsoleTable::si(model.unloaded_frequency().value(), 4, "Hz")
              << ", m_eff = " << ConsoleTable::si(model.effective_mass().value() * 1e3, 3, "g")
              << ", tip-mass sensitivity = "
              << ConsoleTable::num(-model.responsivity(mech::MassDistribution::tip).value() *
                                       1e-15,
                                   3)
              << " Hz/pg\n\n";

    // (a) Analytic mass-loading curve.
    {
        ConsoleTable t({"added mass [pg]", "df tip [Hz]", "df uniform [Hz]",
                        "linear df tip [Hz]"});
        CsvWriter csv("fig2a_mass_loading.csv",
                      {"mass_pg", "df_tip_hz", "df_uniform_hz", "df_tip_linear_hz"});
        for (double m_pg : {0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 50.0}) {
            const Mass dm{m_pg * 1e-15};
            const double df_tip =
                model.frequency_shift(dm, mech::MassDistribution::tip).value();
            const double df_uni =
                model.frequency_shift(dm, mech::MassDistribution::uniform).value();
            const double df_lin =
                model.responsivity(mech::MassDistribution::tip).value() * dm.value();
            t.add_row({ConsoleTable::num(m_pg), ConsoleTable::num(df_tip, 4),
                       ConsoleTable::num(df_uni, 4), ConsoleTable::num(df_lin, 4)});
            csv.write_row(std::vector<double>{m_pg, df_tip, df_uni, df_lin});
        }
        std::cout << t.str("Fig.2a — frequency shift vs added mass (analytic)") << '\n';
    }

    // (b) Closed-loop verification at preset coverages.
    {
        ConsoleTable t({"coverage", "bound mass [pg]", "df analytic [Hz]",
                        "df measured [Hz]", "error [%]"});
        CsvWriter csv("fig2b_closed_loop.csv",
                      {"coverage", "mass_pg", "df_analytic_hz", "df_measured_hz", "error_pct"});
        // Reference: unloaded loop.
        core::ResonantSensorConfig cfg;
        core::ResonantCantileverSystem ref(cfg, Rng(100));
        const auto base = ref.run(0.4_s);
        const double f_base =
            0.5 * (base[base.size() - 1].frequency_hz + base[base.size() - 2].frequency_hz);
        for (double theta : {0.1, 0.25, 0.5, 1.0}) {
            core::ResonantCantileverSystem s(cfg, Rng(100));
            s.set_coverage(theta);
            const auto ms = s.run(0.4_s);
            const double f =
                0.5 * (ms[ms.size() - 1].frequency_hz + ms[ms.size() - 2].frequency_hz);
            const double df_meas = f - f_base;
            const Mass dm = s.bound_mass();
            const mech::MassLoadingModel in_fluid(beam);
            const double fluid_scale =
                s.expected_resonance().value() /
                in_fluid.loaded_frequency(dm, mech::MassDistribution::uniform).value();
            const double df_analytic =
                in_fluid.frequency_shift(dm, mech::MassDistribution::uniform).value() *
                fluid_scale;
            const double err =
                100.0 * (df_meas - df_analytic) / std::fabs(df_analytic);
            t.add_row({ConsoleTable::num(theta), ConsoleTable::num(dm.value() * 1e15, 3),
                       ConsoleTable::num(df_analytic, 4), ConsoleTable::num(df_meas, 4),
                       ConsoleTable::num(err, 2)});
            csv.write_row(std::vector<double>{theta, dm.value() * 1e15, df_analytic, df_meas,
                                              err});
        }
        std::cout << t.str("Fig.2b — closed-loop counter vs analytic model (air)") << '\n';
    }

    // (c) Environments.
    {
        ConsoleTable t({"medium", "f_loaded [kHz]", "Q_hydro", "added fluid mass [ng]"});
        CsvWriter csv("fig2c_environments.csv",
                      {"f_loaded_khz", "q_hydro", "added_mass_ng"});
        for (const auto* fluid : {&phys::fluids::vacuum(), &phys::fluids::air(),
                                  &phys::fluids::water()}) {
            const auto l = mech::HydrodynamicModel(beam, *fluid).solve();
            t.add_row({fluid->name, ConsoleTable::num(l.resonance.value() / 1e3, 4),
                       std::isfinite(l.quality_factor)
                           ? ConsoleTable::num(l.quality_factor, 3)
                           : "inf",
                       ConsoleTable::num(l.added_modal_mass.value() * 1e12, 3)});
            csv.write_row(std::vector<double>{l.resonance.value() / 1e3,
                                              std::isfinite(l.quality_factor)
                                                  ? l.quality_factor
                                                  : -1.0,
                                              l.added_modal_mass.value() * 1e12});
        }
        std::cout << t.str("Fig.2c — fluid loading of the resonance");
    }
    return 0;
}
