// cbs-telemetry: summarize and diff JSONL telemetry streams.
//
//   cbs-telemetry summarize <stream.jsonl>
//   cbs-telemetry diff [options] <baseline.jsonl> <current.jsonl>
//
// Streams are written by obs::Telemetry (CBS_OBS_TELEMETRY; BenchSession
// names them <bench>_telemetry.jsonl). `summarize` reduces each series to
// its trend (first->last completed-window mean per second of series time),
// worst drift rate and Allan floor. `diff` compares two streams with
// direction-aware thresholds — drift magnitudes, Allan floors and window
// stddevs regress upward; non-finite and fault counts regress on any
// increase — so CI gates on stability *trends*, not endpoint aggregates.
//
// Exit status: 0 clean (or --warn-only), 1 regressions found, 2 usage /
// parse errors (empty or malformed streams fail loudly, naming the file).
#include <cstdlib>
#include <iostream>
#include <string>

#include "obs/telemetry_summary.hpp"
#include "util/json.hpp"

namespace {

void usage(std::ostream& out) {
    out << "usage: cbs-telemetry summarize <stream.jsonl>\n"
           "       cbs-telemetry diff [--threshold <fraction>] [--warn-only] "
           "[--only <substring>] <baseline.jsonl> <current.jsonl>\n"
           "  --threshold f   relative change flagged as regression (default 0.10)\n"
           "  --warn-only     report regressions but exit 0 (CI soft gate)\n"
           "  --only s        compare only metrics whose name contains s\n";
}

int run_summarize(const std::string& path) {
    const auto summary = cbs::obs::summarize_file(path);
    std::cout << summary.render();
    return 0;
}

int run_diff(const cbs::obs::DiffOptions& opts, const std::string& baseline,
             const std::string& current) {
    const auto base = cbs::obs::summarize_file(baseline);
    const auto cur = cbs::obs::summarize_file(current);
    const auto result = cbs::obs::diff_streams(base, cur, opts);
    const std::string rendered = result.render(opts);
    if (rendered.empty()) {
        std::cout << "cbs-telemetry: no comparable series found\n";
        return 0;
    }
    std::cout << rendered;
    return result.exit_code(opts);
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        usage(std::cerr);
        return 2;
    }
    const std::string mode = argv[1];
    if (mode == "--help" || mode == "-h") {
        usage(std::cout);
        return 0;
    }
    if (mode != "summarize" && mode != "diff") {
        std::cerr << "cbs-telemetry: unknown mode '" << mode << "'\n";
        usage(std::cerr);
        return 2;
    }

    cbs::obs::DiffOptions opts;
    std::string first;
    std::string second;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        }
        if (arg == "--warn-only") {
            opts.warn_only = true;
            continue;
        }
        if (arg == "--only") {
            if (i + 1 >= argc) {
                std::cerr << "cbs-telemetry: --only needs a value\n";
                return 2;
            }
            opts.only = argv[++i];
            continue;
        }
        if (arg == "--threshold") {
            if (i + 1 >= argc) {
                std::cerr << "cbs-telemetry: --threshold needs a value\n";
                return 2;
            }
            char* end = nullptr;
            opts.threshold = std::strtod(argv[++i], &end);
            if (end == argv[i] || *end != '\0' || opts.threshold < 0.0) {
                std::cerr << "cbs-telemetry: bad threshold '" << argv[i] << "'\n";
                return 2;
            }
            continue;
        }
        if (!arg.empty() && arg.front() == '-') {
            std::cerr << "cbs-telemetry: unknown option '" << arg << "'\n";
            usage(std::cerr);
            return 2;
        }
        if (first.empty()) {
            first = arg;
        } else if (second.empty()) {
            second = arg;
        } else {
            std::cerr << "cbs-telemetry: too many arguments\n";
            usage(std::cerr);
            return 2;
        }
    }

    try {
        if (mode == "summarize") {
            if (first.empty() || !second.empty()) {
                usage(std::cerr);
                return 2;
            }
            return run_summarize(first);
        }
        if (first.empty() || second.empty()) {
            usage(std::cerr);
            return 2;
        }
        return run_diff(opts, first, second);
    } catch (const cbs::json::ParseError& e) {
        std::cerr << "cbs-telemetry: " << e.what() << "\n";
        return 2;
    }
}
