// cbs-obs-diff: compare two observability exports and flag regressions.
//
//   cbs-obs-diff [options] <baseline.json> <current.json>
//
// Inputs are either RunReport JSON exports (BenchSession writes
// <name>_report.json at CBS_OBS=trace) or google-benchmark JSON
// (--benchmark_format=json / --benchmark_out=...); the format of each file
// is auto-detected. Metrics are matched by name; per-metric relative deltas
// beyond the threshold count as regressions only in the harmful direction
// (time up, throughput down, probe non-finite counts up at all).
//
// Exit status: 0 clean (or --warn-only), 1 regressions found, 2 usage /
// parse errors or a benchmark-context mismatch (library_build_type differs
// and --allow-context-mismatch was not given — warn-only does NOT soften
// this, because the comparison itself is invalid). CI runs the warn-only
// form against a checked-in baseline as a soft perf gate plus a hard
// --only gate on the Monte-Carlo rows.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "obs/diff.hpp"
#include "util/json.hpp"

namespace {

void usage(std::ostream& out) {
    out << "usage: cbs-obs-diff [--threshold <fraction>] [--warn-only] "
           "[--only <substring>] [--allow-context-mismatch] "
           "<baseline.json> <current.json>\n"
           "  --threshold f   relative change flagged as regression (default 0.10)\n"
           "  --warn-only     report regressions but exit 0 (CI soft gate)\n"
           "  --only s        compare only metrics whose name contains s\n"
           "                  (CI hard-gates named row sets this way)\n"
           "  --allow-context-mismatch\n"
           "                  compare even when the benchmark contexts'\n"
           "                  library_build_type disagree (normally fatal, exit 2,\n"
           "                  since debug-vs-release timings are not comparable;\n"
           "                  differing num_cpus always warns but never fails)\n";
}

}  // namespace

int main(int argc, char** argv) {
    cbs::obs::DiffOptions opts;
    std::string baseline;
    std::string current;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        }
        if (arg == "--warn-only") {
            opts.warn_only = true;
            continue;
        }
        if (arg == "--allow-context-mismatch") {
            opts.allow_context_mismatch = true;
            continue;
        }
        if (arg == "--only") {
            if (i + 1 >= argc) {
                std::cerr << "cbs-obs-diff: --only needs a value\n";
                return 2;
            }
            opts.only = argv[++i];
            continue;
        }
        if (arg == "--threshold") {
            if (i + 1 >= argc) {
                std::cerr << "cbs-obs-diff: --threshold needs a value\n";
                return 2;
            }
            char* end = nullptr;
            opts.threshold = std::strtod(argv[++i], &end);
            if (end == argv[i] || *end != '\0' || opts.threshold < 0.0) {
                std::cerr << "cbs-obs-diff: bad threshold '" << argv[i] << "'\n";
                return 2;
            }
            continue;
        }
        if (!arg.empty() && arg.front() == '-') {
            std::cerr << "cbs-obs-diff: unknown option '" << arg << "'\n";
            usage(std::cerr);
            return 2;
        }
        if (baseline.empty()) {
            baseline = arg;
        } else if (current.empty()) {
            current = arg;
        } else {
            std::cerr << "cbs-obs-diff: too many arguments\n";
            usage(std::cerr);
            return 2;
        }
    }
    if (baseline.empty() || current.empty()) {
        usage(std::cerr);
        return 2;
    }

    try {
        const auto result = cbs::obs::diff_files(baseline, current, opts);
        const std::string rendered = result.render(opts);
        if (rendered.empty()) {
            std::cout << "cbs-obs-diff: no comparable metrics found\n";
            return 0;
        }
        std::cout << rendered;
        return result.exit_code(opts);
    } catch (const cbs::json::ParseError& e) {
        std::cerr << "cbs-obs-diff: " << e.what() << "\n";
        return 2;
    }
}
